/// Tests for the unified collective API: typed op descriptors
/// (coll_ext/op_desc.hpp), family-wide CollectivePlan plan/execute,
/// plan-vs-direct equivalence for every op kind on both backends (execute()
/// is now a start().wait() shim over nonblocking handles, so these
/// equivalences also pin the handle path to the PR-2 results and virtual
/// times bit-for-bit), execute argument validation, cross-op PlanCache
/// behavior (coexistence, LRU across kinds, per-op counters), zero
/// post-warmup allocations (including the Bruck rotation buffers), the
/// extension tuner, and the op-tagged v2 TuningTable serialization with
/// backward-compatible v1 loading. The nonblocking layer itself
/// (concurrency, tag streams, Schedule) is covered in test_handles.cpp.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <numeric>
#include <optional>
#include <sstream>
#include <vector>

#include "coll_ext/allgather.hpp"
#include "coll_ext/allreduce.hpp"
#include "coll_ext/alltoallv.hpp"
#include "coll_ext/ext_tuner.hpp"
#include "coll_ext/op_desc.hpp"
#include "plan/cache.hpp"
#include "plan/plan.hpp"
#include "plan/tuning_table.hpp"
#include "runtime/collectives.hpp"
#include "test_util.hpp"

namespace mca2a {
namespace {

using rt::Buffer;
using rt::Comm;
using rt::Task;

std::byte contrib(int r, std::size_t k) {
  return static_cast<std::byte>((r * 41 + static_cast<int>(k % 97) + 5) & 0xFF);
}

void run_both(const topo::Machine& machine,
              const std::function<Task<void>(Comm&)>& body) {
  test::run_sim(machine, body);
  test::run_smp(machine.total_ranks(), body);
}

// ---------------------------------------------------------------------------
// Descriptors
// ---------------------------------------------------------------------------

TEST(OpDesc, KeysDistinguishOpsShapesAndAlgorithms) {
  coll::AlltoallDesc a2a;
  a2a.block = 64;
  coll::AllgatherDesc ag;
  ag.block = 64;
  // Same payload size, different op: must never alias in a shared cache.
  EXPECT_NE(coll::OpDesc(a2a).key(), coll::OpDesc(ag).key());

  coll::AlltoallDesc a2a2 = a2a;
  a2a2.block = 128;
  EXPECT_NE(coll::OpDesc(a2a).key(), coll::OpDesc(a2a2).key());

  coll::AlltoallDesc a2a3 = a2a;
  a2a3.algo = coll::Algo::kBruckDirect;
  EXPECT_NE(coll::OpDesc(a2a).key(), coll::OpDesc(a2a3).key());

  // Allreduce: the combiner distinguishes sum from max at equal shape.
  coll::AllreduceDesc sum;
  sum.count = 8;
  sum.combiner = coll::sum_combiner<double>();
  coll::AllreduceDesc mx = sum;
  mx.combiner = coll::max_combiner<double>();
  EXPECT_NE(coll::OpDesc(sum).key(), coll::OpDesc(mx).key());

  // Alltoallv: counts reach the key.
  coll::AlltoallvDesc v1;
  v1.send_counts = {1, 2, 3, 4};
  v1.recv_counts = {4, 3, 2, 1};
  coll::AlltoallvDesc v2 = v1;
  v2.send_counts = {4, 3, 2, 1};
  v2.recv_counts = {1, 2, 3, 4};
  EXPECT_NE(coll::OpDesc(v1).key(), coll::OpDesc(v2).key());
  EXPECT_EQ(coll::OpDesc(v1).key(), coll::OpDesc(coll::AlltoallvDesc(v1)).key());
}

TEST(OpDesc, ValidateCatchesContractViolations) {
  test::run_sim_flat(4, [](Comm& world) -> Task<void> {
    coll::AlltoallvDesc v;
    v.send_counts = {1, 2, 3};  // 3 entries for 4 ranks
    v.recv_counts = {1, 2, 3, 4};
    EXPECT_THROW(coll::OpDesc(v).validate(world), std::invalid_argument);

    coll::AllreduceDesc ar;
    ar.count = 4;  // combiner left null
    EXPECT_THROW(coll::OpDesc(ar).validate(world), std::invalid_argument);
    co_return;
  });
}

TEST(OpDesc, TagsRoundTrip) {
  for (int i = 0; i < coll::kNumOpKinds; ++i) {
    const auto k = static_cast<coll::OpKind>(i);
    const auto back = coll::op_kind_from_tag(coll::op_kind_tag(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(coll::op_kind_from_tag("nope").has_value());
}

// ---------------------------------------------------------------------------
// Plan-vs-direct equivalence: allgather
// ---------------------------------------------------------------------------

TEST(CollectivePlan, AllgatherMatchesDirectOnBothBackends) {
  const topo::Machine machine = topo::generic(2, 4);
  const int p = machine.total_ranks();
  const std::size_t block = 32;
  for (coll::AllgatherAlgo algo :
       {coll::AllgatherAlgo::kRing, coll::AllgatherAlgo::kBruck,
        coll::AllgatherAlgo::kHierarchical,
        coll::AllgatherAlgo::kLocalityAware}) {
    run_both(machine, [&](Comm& world) -> Task<void> {
      const int me = world.rank();
      coll::AllgatherDesc desc;
      desc.block = block;
      desc.algo = algo;
      plan::PlanOptions popts;
      popts.group_size = 2;
      plan::CollectivePlan plan =
          plan::make_plan(world, machine, model::test_params(), desc, popts);
      EXPECT_EQ(plan.kind(), coll::OpKind::kAllgather);
      EXPECT_EQ(plan.allgather_algo(), algo);
      EXPECT_EQ(coll::needs_locality(algo), plan.bundle() != nullptr);

      Buffer send = Buffer::real(block);
      for (std::size_t k = 0; k < block; ++k) {
        send.data()[k] = contrib(me, k);
      }
      Buffer got = Buffer::real(block * p);
      Buffer want = Buffer::real(block * p);

      // Direct call vs three plan executes: identical bytes every time.
      std::optional<rt::LocalityComms> lc;
      if (coll::needs_locality(algo)) {
        lc.emplace(rt::build_locality_comms(world, machine, 2, false));
      }
      switch (algo) {
        case coll::AllgatherAlgo::kRing:
          co_await coll::allgather_ring(world, send.view(), want.view());
          break;
        case coll::AllgatherAlgo::kBruck:
          co_await coll::allgather_bruck(world, send.view(), want.view());
          break;
        case coll::AllgatherAlgo::kHierarchical:
          co_await coll::allgather_hierarchical(*lc, send.view(), want.view());
          break;
        default:
          co_await coll::allgather_locality_aware(*lc, send.view(),
                                                  want.view());
          break;
      }
      for (int it = 0; it < 3; ++it) {
        std::memset(got.data(), 0, got.size());
        co_await plan.execute(rt::ConstView(send.view()), got.view());
        EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size()), 0)
            << coll::allgather_algo_name(algo) << " iteration " << it;
      }
      for (int r = 0; r < p; ++r) {
        for (std::size_t k = 0; k < block; ++k) {
          EXPECT_EQ(got.data()[r * block + k], contrib(r, k));
        }
      }
      EXPECT_EQ(plan.executions(), 3u);
    });
  }
}

TEST(CollectivePlan, AllgatherVirtualTimeMatchesDirectPath) {
  const topo::Machine machine = topo::generic(2, 4);
  for (coll::AllgatherAlgo algo :
       {coll::AllgatherAlgo::kRing, coll::AllgatherAlgo::kBruck,
        coll::AllgatherAlgo::kHierarchical,
        coll::AllgatherAlgo::kLocalityAware}) {
    const auto timed = [&](bool use_plan) {
      return test::run_sim(machine, [&](Comm& world) -> Task<void> {
        const std::size_t block = 16;
        Buffer send = world.alloc_buffer(block);
        Buffer recv = world.alloc_buffer(block * world.size());
        if (use_plan) {
          coll::AllgatherDesc desc;
          desc.block = block;
          desc.algo = algo;
          plan::PlanOptions popts;
          popts.group_size = 2;
          plan::CollectivePlan plan = plan::make_plan(
              world, machine, model::test_params(), desc, popts);
          co_await rt::barrier(world);
          co_await plan.execute(rt::ConstView(send.view()), recv.view());
        } else {
          std::optional<rt::LocalityComms> lc;
          if (coll::needs_locality(algo)) {
            lc.emplace(rt::build_locality_comms(world, machine, 2, false));
          }
          co_await rt::barrier(world);
          switch (algo) {
            case coll::AllgatherAlgo::kRing:
              co_await coll::allgather_ring(world, send.view(), recv.view());
              break;
            case coll::AllgatherAlgo::kBruck:
              co_await coll::allgather_bruck(world, send.view(), recv.view());
              break;
            case coll::AllgatherAlgo::kHierarchical:
              co_await coll::allgather_hierarchical(*lc, send.view(),
                                                    recv.view());
              break;
            default:
              co_await coll::allgather_locality_aware(*lc, send.view(),
                                                      recv.view());
              break;
          }
        }
      });
    };
    EXPECT_DOUBLE_EQ(timed(false), timed(true))
        << coll::allgather_algo_name(algo);
  }
}

// ---------------------------------------------------------------------------
// Plan-vs-direct equivalence: allreduce
// ---------------------------------------------------------------------------

TEST(CollectivePlan, AllreduceMatchesDirectOnBothBackends) {
  const topo::Machine machine = topo::generic(2, 4);
  const int p = machine.total_ranks();
  constexpr int kElems = 16;  // >= ranks, so Rabenseifner is legal
  for (coll::AllreduceAlgo algo :
       {coll::AllreduceAlgo::kRecursiveDoubling,
        coll::AllreduceAlgo::kRabenseifner, coll::AllreduceAlgo::kNodeAware}) {
    run_both(machine, [&](Comm& world) -> Task<void> {
      const int me = world.rank();
      coll::AllreduceDesc desc;
      desc.count = kElems;
      desc.combiner = coll::sum_combiner<std::int64_t>();
      desc.algo = algo;
      plan::PlanOptions popts;
      popts.group_size = 2;
      plan::CollectivePlan plan =
          plan::make_plan(world, machine, model::test_params(), desc, popts);
      EXPECT_EQ(plan.kind(), coll::OpKind::kAllreduce);
      EXPECT_EQ(plan.allreduce_algo(), algo);

      const auto fill = [&](Buffer& b) {
        auto v = b.typed<std::int64_t>();
        for (int i = 0; i < kElems; ++i) {
          v[i] = me * 100 + i;
        }
      };
      const auto check = [&](const Buffer& b) {
        auto v = b.typed<std::int64_t>();
        for (int i = 0; i < kElems; ++i) {
          const std::int64_t want =
              static_cast<std::int64_t>(p) * (p - 1) / 2 * 100 +
              static_cast<std::int64_t>(p) * i;
          EXPECT_EQ(v[i], want)
              << coll::allreduce_algo_name(algo) << " element " << i;
        }
      };

      // The (send, recv) form stages through recv...
      Buffer in = Buffer::real(kElems * sizeof(std::int64_t));
      Buffer out = Buffer::real(kElems * sizeof(std::int64_t));
      fill(in);
      co_await plan.execute(rt::ConstView(in.view()), out.view());
      check(out);
      // ...and execute_inplace reduces without the staging copy.
      Buffer data = Buffer::real(kElems * sizeof(std::int64_t));
      fill(data);
      co_await plan.execute_inplace(data.view());
      check(data);
      EXPECT_EQ(plan.executions(), 2u);
    });
  }
}

TEST(CollectivePlan, AllreduceVirtualTimeMatchesDirectPath) {
  const topo::Machine machine = topo::generic(2, 4);
  for (coll::AllreduceAlgo algo :
       {coll::AllreduceAlgo::kRecursiveDoubling,
        coll::AllreduceAlgo::kRabenseifner, coll::AllreduceAlgo::kNodeAware}) {
    const auto timed = [&](bool use_plan) {
      return test::run_sim(machine, [&](Comm& world) -> Task<void> {
        constexpr int kElems = 16;
        const coll::Combiner op = coll::sum_combiner<std::int64_t>();
        Buffer data = world.alloc_buffer(kElems * sizeof(std::int64_t));
        if (use_plan) {
          coll::AllreduceDesc desc;
          desc.count = kElems;
          desc.combiner = op;
          desc.algo = algo;
          plan::PlanOptions popts;
          popts.group_size = 2;
          plan::CollectivePlan plan = plan::make_plan(
              world, machine, model::test_params(), desc, popts);
          co_await rt::barrier(world);
          co_await plan.execute_inplace(data.view());
        } else {
          std::optional<rt::LocalityComms> lc;
          if (coll::needs_locality(algo)) {
            lc.emplace(rt::build_locality_comms(world, machine, 2, false));
          }
          co_await rt::barrier(world);
          switch (algo) {
            case coll::AllreduceAlgo::kRecursiveDoubling:
              co_await coll::allreduce_recursive_doubling(world, data.view(),
                                                          op);
              break;
            case coll::AllreduceAlgo::kRabenseifner:
              co_await coll::allreduce_rabenseifner(world, data.view(), op);
              break;
            default:
              co_await coll::allreduce_node_aware(*lc, data.view(), op);
              break;
          }
        }
      });
    };
    EXPECT_DOUBLE_EQ(timed(false), timed(true))
        << coll::allreduce_algo_name(algo);
  }
}

// ---------------------------------------------------------------------------
// Plan-vs-direct equivalence: alltoallv
// ---------------------------------------------------------------------------

TEST(CollectivePlan, AlltoallvMatchesDirectOnBothBackends) {
  const topo::Machine machine = topo::generic(1, 5);
  const int p = machine.total_ranks();
  for (coll::AlltoallvAlgo algo :
       {coll::AlltoallvAlgo::kPairwise, coll::AlltoallvAlgo::kNonblocking}) {
    run_both(machine, [&](Comm& world) -> Task<void> {
      const int me = world.rank();
      // Ragged counts: rank r sends (r + d + 1) bytes to destination d.
      coll::AlltoallvDesc desc;
      desc.send_counts.resize(p);
      desc.recv_counts.resize(p);
      for (int d = 0; d < p; ++d) {
        desc.send_counts[d] = static_cast<std::size_t>(me + d + 1);
        desc.recv_counts[d] = static_cast<std::size_t>(d + me + 1);
      }
      desc.algo = algo;
      plan::CollectivePlan plan =
          plan::make_plan(world, machine, model::test_params(), desc);
      EXPECT_EQ(plan.kind(), coll::OpKind::kAlltoallv);
      EXPECT_EQ(plan.alltoallv_algo(), algo);

      const auto sdispls = coll::displs_from_counts(desc.send_counts);
      const auto rdispls = coll::displs_from_counts(desc.recv_counts);
      const std::size_t stot = desc.send_total();
      const std::size_t rtot = desc.recv_total();
      Buffer send = Buffer::real(stot);
      for (int d = 0; d < p; ++d) {
        for (std::size_t k = 0; k < desc.send_counts[d]; ++k) {
          send.data()[sdispls[d] + k] = test::pattern(me, d, k);
        }
      }
      Buffer want = Buffer::real(rtot);
      co_await coll::alltoallv_pairwise(world, send.view(), desc.send_counts,
                                        sdispls, want.view(),
                                        desc.recv_counts, rdispls);
      Buffer got = Buffer::real(rtot);
      for (int it = 0; it < 2; ++it) {
        std::memset(got.data(), 0, got.size());
        co_await plan.execute(rt::ConstView(send.view()), got.view());
        EXPECT_EQ(std::memcmp(got.data(), want.data(), rtot), 0)
            << coll::alltoallv_algo_name(algo) << " iteration " << it;
      }
      // And against first principles: block from s carries pattern(s, me).
      for (int s = 0; s < p; ++s) {
        for (std::size_t k = 0; k < desc.recv_counts[s]; ++k) {
          EXPECT_EQ(got.data()[rdispls[s] + k], test::pattern(s, me, k));
        }
      }
    });
  }
}

// ---------------------------------------------------------------------------
// execute() == start().wait(): the blocking shim adds nothing
// ---------------------------------------------------------------------------

TEST(CollectivePlan, ExecuteIsStartWaitBitForBit) {
  const topo::Machine machine = topo::generic(2, 4);
  const std::size_t block = 64;
  const auto timed = [&](bool nonblocking) {
    return test::run_sim(machine, [&](Comm& world) -> Task<void> {
      coll::AlltoallDesc d;
      d.block = block;
      d.algo = coll::Algo::kNodeAware;
      plan::CollectivePlan plan =
          plan::make_plan(world, machine, model::test_params(), d);
      Buffer s = world.alloc_buffer(block * world.size());
      Buffer r = world.alloc_buffer(block * world.size());
      co_await rt::barrier(world);
      if (nonblocking) {
        plan::CollectiveHandle h =
            plan.start(rt::ConstView(s.view()), r.view());
        co_await h.wait();
      } else {
        co_await plan.execute(rt::ConstView(s.view()), r.view());
      }
    });
  };
  EXPECT_DOUBLE_EQ(timed(false), timed(true));
}

// ---------------------------------------------------------------------------
// Family-wide tuner resolution
// ---------------------------------------------------------------------------

TEST(CollectivePlan, AutoSelectionWorksFamilyWide) {
  const topo::Machine machine = topo::generic_hier(4, 2, 2, 4);
  const model::NetParams net = model::omni_path();
  const coll::AllgatherChoice ag_want =
      coll::select_allgather_algorithm(machine, net, 64);
  const coll::AllreduceChoice ar_want =
      coll::select_allreduce_algorithm(machine, net, 256, sizeof(double));
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    coll::AllgatherDesc agd;
    agd.block = 64;
    plan::CollectivePlan ag = plan::make_plan(world, machine, net, agd);
    EXPECT_EQ(ag.allgather_algo(), ag_want.algo);
    EXPECT_EQ(ag.group_size(), ag_want.group_size);
    EXPECT_DOUBLE_EQ(ag.predicted_seconds(), ag_want.predicted_seconds);

    coll::AllreduceDesc ard;
    ard.count = 256;
    ard.combiner = coll::sum_combiner<double>();
    plan::CollectivePlan ar = plan::make_plan(world, machine, net, ard);
    EXPECT_EQ(ar.allreduce_algo(), ar_want.algo);
    EXPECT_EQ(ar.group_size(), ar_want.group_size);
    co_return;
  });
}

TEST(CollectivePlan, TableMemoizesExtensionSelection) {
  const topo::Machine machine = topo::generic_hier(4, 2, 2, 4);
  const model::NetParams net = model::omni_path();
  plan::TuningTable table;
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    plan::PlanOptions popts;
    popts.table = &table;
    coll::AllgatherDesc agd;
    agd.block = 64;
    plan::CollectivePlan ag =
        plan::make_plan(world, machine, net, agd, popts);
    EXPECT_EQ(ag.allgather_algo(), table.lookup_allgather(machine, 64)->algo);

    // count >= ranks (64): an unrestricted shape, so the table memoizes it
    // (restricted count < ranks shapes always re-select; see choose_allreduce).
    coll::AllreduceDesc ard;
    ard.count = 128;
    ard.combiner = coll::sum_combiner<float>();
    plan::CollectivePlan ar =
        plan::make_plan(world, machine, net, ard, popts);
    const auto memoized = table.lookup_allreduce(machine, 128 * sizeof(float));
    EXPECT_TRUE(memoized.has_value());
    EXPECT_EQ(ar.allreduce_algo(), memoized->algo);
    co_return;
  });
  // One entry per op; every rank after the first was served from the table.
  EXPECT_EQ(table.size(), 2u);
}

TEST(ExtTuner, PrefersLocalityAllgatherAtScaleForSmallBlocks) {
  // Mirrors the virtual-time shape test in test_coll_ext: on a many-node
  // machine with small blocks, the closed-form model must also rank the
  // locality-aware allgather above the flat ring.
  const topo::Machine machine = topo::generic_hier(8, 2, 1, 8);
  const model::NetParams net = model::omni_path();
  const double ring = coll::predict_allgather_seconds(
      coll::AllgatherAlgo::kRing, machine, net, 8, machine.ppn());
  const double loc = coll::predict_allgather_seconds(
      coll::AllgatherAlgo::kLocalityAware, machine, net, 8, machine.ppn());
  EXPECT_LT(loc, ring);
  // And selection with a large vector must not pick recursive doubling
  // (bandwidth-bound regime).
  const coll::AllreduceChoice big = coll::select_allreduce_algorithm(
      machine, net, 1 << 20, sizeof(double));
  EXPECT_NE(big.algo, coll::AllreduceAlgo::kRecursiveDoubling);
}

// ---------------------------------------------------------------------------
// Execute-time validation (satellite: no corruption/deadlock on bad extents)
// ---------------------------------------------------------------------------

TEST(CollectivePlan, RejectsBadBufferExtentsOnBothBackends) {
  const topo::Machine machine = topo::generic(1, 1);
  const auto body = [&](Comm& world) -> Task<void> {
    const model::NetParams net = model::test_params();

    coll::AlltoallDesc a2a;
    a2a.block = 8;
    a2a.algo = coll::Algo::kPairwiseDirect;
    plan::CollectivePlan pa = plan::make_plan(world, machine, net, a2a);
    Buffer ok8 = Buffer::real(8);
    Buffer bad = Buffer::real(4);
    EXPECT_THROW(
        rt::sync_wait(pa.execute(rt::ConstView(bad.view()), ok8.view())),
        std::invalid_argument);
    EXPECT_THROW(
        rt::sync_wait(pa.execute(rt::ConstView(ok8.view()), bad.view())),
        std::invalid_argument);
    EXPECT_THROW(rt::sync_wait(pa.execute_inplace(ok8.view())),
                 std::invalid_argument);

    coll::AllgatherDesc ag;
    ag.block = 8;
    ag.algo = coll::AllgatherAlgo::kRing;
    plan::CollectivePlan pg = plan::make_plan(world, machine, net, ag);
    EXPECT_THROW(
        rt::sync_wait(pg.execute(rt::ConstView(bad.view()), ok8.view())),
        std::invalid_argument);

    coll::AllreduceDesc ar;
    ar.count = 2;
    ar.combiner = coll::sum_combiner<std::int32_t>();
    ar.algo = coll::AllreduceAlgo::kRecursiveDoubling;
    plan::CollectivePlan pr = plan::make_plan(world, machine, net, ar);
    EXPECT_THROW(rt::sync_wait(pr.execute_inplace(bad.view())),
                 std::invalid_argument);
    EXPECT_THROW(
        rt::sync_wait(pr.execute(rt::ConstView(bad.view()), ok8.view())),
        std::invalid_argument);

    coll::AlltoallvDesc v;
    v.send_counts = {8};
    v.recv_counts = {8};
    plan::CollectivePlan pv = plan::make_plan(world, machine, net, v);
    EXPECT_THROW(
        rt::sync_wait(pv.execute(rt::ConstView(bad.view()), ok8.view())),
        std::invalid_argument);

    // No execution was counted for any of the rejected calls.
    EXPECT_EQ(pa.executions(), 0u);
    EXPECT_EQ(pg.executions(), 0u);
    EXPECT_EQ(pr.executions(), 0u);
    EXPECT_EQ(pv.executions(), 0u);
    co_return;
  };
  test::run_sim(machine, body);
  test::run_smp(1, body);
}

TEST(CollectivePlan, MakePlanRejectsBadDescriptors) {
  test::run_sim_flat(4, [](Comm& world) -> Task<void> {
    const topo::Machine machine = topo::generic(1, 4);
    const model::NetParams net = model::test_params();

    // Alltoallv counts sized for the wrong communicator.
    coll::AlltoallvDesc v;
    v.send_counts = {1, 2};
    v.recv_counts = {1, 2};
    EXPECT_THROW(plan::make_plan(world, machine, net, v),
                 std::invalid_argument);

    // Null combiner.
    coll::AllreduceDesc ar;
    ar.count = 8;
    EXPECT_THROW(plan::make_plan(world, machine, net, ar),
                 std::invalid_argument);

    // Rabenseifner with fewer elements than ranks fails at plan time.
    coll::AllreduceDesc small;
    small.count = 2;
    small.combiner = coll::sum_combiner<double>();
    small.algo = coll::AllreduceAlgo::kRabenseifner;
    EXPECT_THROW(plan::make_plan(world, machine, net, small),
                 std::invalid_argument);
    co_return;
  });
}

// ---------------------------------------------------------------------------
// Cross-op PlanCache behavior
// ---------------------------------------------------------------------------

TEST(PlanCache, ServesAllOpKindsWithPerOpCounters) {
  const topo::Machine machine = topo::generic(1, 2);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    plan::PlanCache cache;
    const model::NetParams net = model::test_params();

    coll::AlltoallDesc a2a;
    a2a.block = 16;
    a2a.algo = coll::Algo::kPairwiseDirect;
    coll::AllgatherDesc ag;
    ag.block = 16;
    ag.algo = coll::AllgatherAlgo::kRing;
    coll::AllreduceDesc ar;
    ar.count = 4;
    ar.combiner = coll::sum_combiner<std::int32_t>();
    ar.algo = coll::AllreduceAlgo::kRecursiveDoubling;
    coll::AlltoallvDesc v;
    v.send_counts = {4, 4};
    v.recv_counts = {4, 4};

    // Same payload size everywhere: only the op tag separates the entries.
    auto p1 = cache.get_or_create(world, machine, net, coll::OpDesc(a2a));
    auto p2 = cache.get_or_create(world, machine, net, coll::OpDesc(ag));
    auto p3 = cache.get_or_create(world, machine, net, coll::OpDesc(ar));
    auto p4 = cache.get_or_create(world, machine, net, coll::OpDesc(v));
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_EQ(cache.stats().constructions, 4u);
    EXPECT_EQ(p1->kind(), coll::OpKind::kAlltoall);
    EXPECT_EQ(p2->kind(), coll::OpKind::kAllgather);
    EXPECT_EQ(p3->kind(), coll::OpKind::kAllreduce);
    EXPECT_EQ(p4->kind(), coll::OpKind::kAlltoallv);

    // Refetches hit, attributed to the right op kind.
    EXPECT_EQ(cache.get_or_create(world, machine, net, coll::OpDesc(ag)).get(),
              p2.get());
    EXPECT_EQ(cache.get_or_create(world, machine, net, coll::OpDesc(ag)).get(),
              p2.get());
    EXPECT_EQ(cache.get_or_create(world, machine, net, coll::OpDesc(ar)).get(),
              p3.get());
    EXPECT_EQ(cache.stats().hits, 3u);
    EXPECT_EQ(cache.stats(coll::OpKind::kAllgather).hits, 2u);
    EXPECT_EQ(cache.stats(coll::OpKind::kAllgather).misses, 1u);
    EXPECT_EQ(cache.stats(coll::OpKind::kAllreduce).hits, 1u);
    EXPECT_EQ(cache.stats(coll::OpKind::kAlltoall).hits, 0u);
    EXPECT_EQ(cache.stats(coll::OpKind::kAlltoall).misses, 1u);
    EXPECT_EQ(cache.stats(coll::OpKind::kAlltoallv).misses, 1u);

    // Executing through cached plans of different kinds works side by side.
    const int me = world.rank();
    const int p = world.size();
    Buffer send = world.alloc_buffer(static_cast<std::size_t>(p) * 16);
    Buffer recv = world.alloc_buffer(static_cast<std::size_t>(p) * 16);
    test::fill_send(send, me, p, 16);
    co_await p1->execute(rt::ConstView(send.view()), recv.view());
    EXPECT_TRUE(test::check_recv(recv, me, p, 16));
    Buffer acc = Buffer::real(4 * sizeof(std::int32_t));
    for (int i = 0; i < 4; ++i) {
      acc.typed<std::int32_t>()[i] = me + i;
    }
    co_await p3->execute_inplace(acc.view());
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(acc.typed<std::int32_t>()[i], p * (p - 1) / 2 + p * i);
    }
  });
}

TEST(PlanCache, DescriptorAndLegacyRoutesShareOneEntry) {
  // The alltoall algorithm can be named in the descriptor or via the legacy
  // PlanOptions knob; both routes must resolve to the same cache entry, or
  // construction-exactly-once silently breaks when callers migrate.
  const topo::Machine machine = topo::generic(1, 2);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    plan::PlanCache cache;
    const model::NetParams net = model::test_params();
    plan::PlanOptions legacy;
    legacy.algo = coll::Algo::kBruckDirect;
    auto via_opts = cache.get_or_create(world, machine, net, 64, legacy);
    coll::AlltoallDesc d;
    d.block = 64;
    d.algo = coll::Algo::kBruckDirect;
    auto via_desc =
        cache.get_or_create(world, machine, net, coll::OpDesc(d), {});
    EXPECT_EQ(via_opts.get(), via_desc.get());
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().constructions, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_TRUE(cache.contains(world, coll::OpDesc(d)));
    EXPECT_TRUE(cache.contains(world, 64, legacy));
    // A descriptor algorithm beats the knob in make_plan, so it must also
    // beat it in the key: desc + redundant knob is still the same entry.
    cache.get_or_create(world, machine, net, coll::OpDesc(d), legacy);
    EXPECT_EQ(cache.stats().constructions, 1u);
    EXPECT_EQ(cache.stats().hits, 2u);
    co_return;
  });
}

TEST(PlanCache, LruEvictsAcrossOpKinds) {
  const topo::Machine machine = topo::generic(1, 2);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    plan::PlanCache cache(2);
    const model::NetParams net = model::test_params();
    coll::AlltoallDesc a2a;
    a2a.block = 8;
    a2a.algo = coll::Algo::kPairwiseDirect;
    coll::AllgatherDesc ag;
    ag.block = 8;
    ag.algo = coll::AllgatherAlgo::kRing;
    coll::AllreduceDesc ar;
    ar.count = 2;
    ar.combiner = coll::sum_combiner<std::int32_t>();
    ar.algo = coll::AllreduceAlgo::kRecursiveDoubling;

    cache.get_or_create(world, machine, net, coll::OpDesc(a2a));
    cache.get_or_create(world, machine, net, coll::OpDesc(ag));
    // Touch the alltoall entry so the allgather one is LRU...
    cache.get_or_create(world, machine, net, coll::OpDesc(a2a));
    // ...then overflow with an allreduce: the allgather entry must go.
    cache.get_or_create(world, machine, net, coll::OpDesc(ar));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_TRUE(cache.contains(world, coll::OpDesc(a2a)));
    EXPECT_FALSE(cache.contains(world, coll::OpDesc(ag)));
    EXPECT_TRUE(cache.contains(world, coll::OpDesc(ar)));
    co_return;
  });
}

// ---------------------------------------------------------------------------
// Scratch recycling: zero post-warmup allocations (incl. Bruck rotation)
// ---------------------------------------------------------------------------

TEST(CollectivePlan, BruckPlansStopAllocatingAfterWarmup) {
  // The documented PR-1 exception — Inner::kBruck rotation buffers being
  // per-call — is gone: direct Bruck, Bruck-inner locality alltoall, and
  // Bruck allgather all recycle through the plan's arena.
  const topo::Machine machine = topo::generic(2, 4);
  const int p = machine.total_ranks();
  test::run_smp(p, [&](Comm& world) -> Task<void> {
    const int me = world.rank();
    const model::NetParams net = model::test_params();
    Buffer send = world.alloc_buffer(static_cast<std::size_t>(p) * 16);
    Buffer recv = world.alloc_buffer(static_cast<std::size_t>(p) * 16);
    test::fill_send(send, me, p, 16);

    {
      coll::AlltoallDesc d;
      d.block = 16;
      d.algo = coll::Algo::kBruckDirect;
      plan::CollectivePlan plan = plan::make_plan(world, machine, net, d);
      co_await plan.execute(rt::ConstView(send.view()), recv.view());
      const std::uint64_t first = plan.scratch().allocations();
      EXPECT_GT(first, 0u);
      for (int it = 0; it < 3; ++it) {
        co_await plan.execute(rt::ConstView(send.view()), recv.view());
      }
      EXPECT_EQ(plan.scratch().allocations(), first) << "direct Bruck";
      EXPECT_GT(plan.scratch().reuses(), 0u);
      EXPECT_TRUE(test::check_recv(recv, me, p, 16));
    }
    {
      coll::AlltoallDesc d;
      d.block = 16;
      d.algo = coll::Algo::kNodeAware;
      plan::PlanOptions popts;
      popts.inner = coll::Inner::kBruck;
      plan::CollectivePlan plan =
          plan::make_plan(world, machine, net, d, popts);
      co_await plan.execute(rt::ConstView(send.view()), recv.view());
      const std::uint64_t first = plan.scratch().allocations();
      for (int it = 0; it < 3; ++it) {
        co_await plan.execute(rt::ConstView(send.view()), recv.view());
      }
      EXPECT_EQ(plan.scratch().allocations(), first) << "Bruck-inner locality";
      EXPECT_TRUE(test::check_recv(recv, me, p, 16));
    }
    {
      coll::AllgatherDesc d;
      d.block = 16;
      d.algo = coll::AllgatherAlgo::kBruck;
      plan::CollectivePlan plan = plan::make_plan(world, machine, net, d);
      Buffer all = world.alloc_buffer(static_cast<std::size_t>(p) * 16);
      co_await plan.execute(rt::ConstView(send.view(0, 16)), all.view());
      const std::uint64_t first = plan.scratch().allocations();
      EXPECT_GT(first, 0u);
      for (int it = 0; it < 3; ++it) {
        co_await plan.execute(rt::ConstView(send.view(0, 16)), all.view());
      }
      EXPECT_EQ(plan.scratch().allocations(), first) << "Bruck allgather";
    }
  });
}

TEST(CollectivePlan, ExtensionPlansStopAllocatingAfterWarmup) {
  const topo::Machine machine = topo::generic(2, 4);
  const int p = machine.total_ranks();
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    const model::NetParams net = model::test_params();
    {
      coll::AllgatherDesc d;
      d.block = 32;
      d.algo = coll::AllgatherAlgo::kLocalityAware;
      plan::PlanOptions popts;
      popts.group_size = 2;
      plan::CollectivePlan plan =
          plan::make_plan(world, machine, net, d, popts);
      Buffer send = world.alloc_buffer(32);
      Buffer recv = world.alloc_buffer(static_cast<std::size_t>(p) * 32);
      co_await plan.execute(rt::ConstView(send.view()), recv.view());
      const std::uint64_t first = plan.scratch().allocations();
      EXPECT_GT(first, 0u);
      for (int it = 0; it < 3; ++it) {
        co_await plan.execute(rt::ConstView(send.view()), recv.view());
      }
      EXPECT_EQ(plan.scratch().allocations(), first) << "locality allgather";
    }
    {
      coll::AllreduceDesc d;
      d.count = 64;
      d.combiner = coll::sum_combiner<double>();
      d.algo = coll::AllreduceAlgo::kNodeAware;
      plan::PlanOptions popts;
      popts.group_size = 2;
      plan::CollectivePlan plan =
          plan::make_plan(world, machine, net, d, popts);
      Buffer data = world.alloc_buffer(64 * sizeof(double));
      co_await plan.execute_inplace(data.view());
      const std::uint64_t first = plan.scratch().allocations();
      EXPECT_GT(first, 0u);
      for (int it = 0; it < 3; ++it) {
        co_await plan.execute_inplace(data.view());
      }
      EXPECT_EQ(plan.scratch().allocations(), first) << "node-aware allreduce";
    }
  });
}

// ---------------------------------------------------------------------------
// Op-tagged tuning table serialization
// ---------------------------------------------------------------------------

TEST(TuningTable, OpTaggedRoundTrip) {
  const model::NetParams net = model::omni_path();
  plan::TuningTable table;
  table.choose(topo::dane(8), net, 64);
  table.choose(topo::dane(8), net, 1024);
  table.choose_allgather(topo::dane(8), net, 64);
  table.choose_allreduce(topo::dane(8), net, 1024, sizeof(double));
  EXPECT_EQ(table.size(), 4u);

  std::stringstream ss;
  table.save(ss);
  plan::TuningTable loaded = plan::TuningTable::load(ss);
  EXPECT_EQ(loaded.size(), table.size());

  // Alltoall entries at a given size do not shadow allgather entries at the
  // same size, and every decision survives the text round trip exactly.
  for (std::size_t block : {std::size_t{64}, std::size_t{1024}}) {
    const auto want = table.lookup(topo::dane(8), block);
    const auto got = loaded.lookup(topo::dane(8), block);
    ASSERT_TRUE(want && got);
    EXPECT_EQ(want->algo, got->algo);
    EXPECT_EQ(want->group_size, got->group_size);
    EXPECT_DOUBLE_EQ(want->predicted_seconds, got->predicted_seconds);
  }
  const auto ag_want = table.lookup_allgather(topo::dane(8), 64);
  const auto ag_got = loaded.lookup_allgather(topo::dane(8), 64);
  ASSERT_TRUE(ag_want && ag_got);
  EXPECT_EQ(ag_want->algo, ag_got->algo);
  EXPECT_EQ(ag_want->group_size, ag_got->group_size);
  EXPECT_DOUBLE_EQ(ag_want->predicted_seconds, ag_got->predicted_seconds);
  const auto ar_got =
      loaded.lookup_allreduce(topo::dane(8), 1024 * sizeof(double));
  ASSERT_TRUE(ar_got.has_value());
  EXPECT_EQ(ar_got->algo, table.lookup_allreduce(
                              topo::dane(8), 1024 * sizeof(double))->algo);
}

TEST(TuningTable, AllreduceHitRechecksRabenseifnerEligibility) {
  // Entries are keyed by vector bytes; two descriptors with the same byte
  // size can have different element counts (different elem_size), and
  // Rabenseifner is only legal when count >= ranks. A memoized Rabenseifner
  // pick must not leak to an ineligible shape.
  const topo::Machine machine = topo::generic(8, 4);  // 32 ranks
  const model::NetParams net = model::omni_path();
  plan::TuningTable table;
  // 65536 elements of 8 bytes: count >= ranks, Rabenseifner eligible (and,
  // at this size, typically chosen — but the test holds either way).
  const coll::AllreduceChoice first =
      table.choose_allreduce(machine, net, 65536, 8);
  // Same 512 KiB vector as 16 jumbo elements: count < 32 ranks.
  const coll::AllreduceChoice second =
      table.choose_allreduce(machine, net, 16, 32768);
  EXPECT_NE(second.algo, coll::AllreduceAlgo::kRabenseifner);
  // The stored entry still serves the original shape.
  EXPECT_EQ(table.choose_allreduce(machine, net, 65536, 8).algo, first.algo);
}

TEST(TuningTable, LoadsPr1EraUntaggedTables) {
  // A v1 file has no op column; every entry is an all-to-all decision.
  std::stringstream ss(
      "mca2a-tuning-table v1\n"
      "dane 8 112 64 3 112 0.5\n"
      "dane 8 112 1024 6 112 0.25\n");
  plan::TuningTable loaded = plan::TuningTable::load(ss);
  EXPECT_EQ(loaded.size(), 2u);
  const auto e = loaded.lookup(topo::dane(8), 64);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->algo, static_cast<coll::Algo>(3));
  EXPECT_EQ(e->group_size, 112);
  EXPECT_DOUBLE_EQ(e->predicted_seconds, 0.5);
  // And it re-saves in the tagged v2 format.
  std::stringstream out;
  loaded.save(out);
  EXPECT_NE(out.str().find("mca2a-tuning-table v2"), std::string::npos);
  EXPECT_NE(out.str().find(" a2a "), std::string::npos);
}

TEST(TuningTable, LoadRejectsBadOpTagsAndPerOpRanges) {
  {
    // Unknown op tag.
    std::stringstream ss(
        "mca2a-tuning-table v2\ndane 8 112 bcast 64 0 1 0.5\n");
    EXPECT_THROW(plan::TuningTable::load(ss), std::runtime_error);
  }
  {
    // Algorithm index valid for alltoall but out of range for allgather.
    std::stringstream ss(
        "mca2a-tuning-table v2\ndane 8 112 ag 64 7 1 0.5\n");
    EXPECT_THROW(plan::TuningTable::load(ss), std::runtime_error);
  }
  {
    // v1 lines must still be range-checked as alltoall.
    std::stringstream ss("mca2a-tuning-table v1\ndane 8 112 64 99 4 0.5\n");
    EXPECT_THROW(plan::TuningTable::load(ss), std::runtime_error);
  }
}

}  // namespace
}  // namespace mca2a
