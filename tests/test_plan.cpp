/// Tests for the persistent plan/execute subsystem (src/plan/): plan-vs-
/// direct result equivalence on both backends, one-time construction
/// observable through the PlanCache and locality-build counters, LRU
/// eviction, scratch-arena recycling, and tuning-table serialization.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/tuner.hpp"
#include "harness/sweep.hpp"
#include "plan/cache.hpp"
#include "plan/plan.hpp"
#include "plan/sharded_cache.hpp"
#include "plan/tuning_table.hpp"
#include "runtime/collectives.hpp"
#include "test_util.hpp"

namespace mca2a {
namespace {

using rt::Comm;
using rt::Task;

struct AlgoCase {
  coll::Algo algo;
  int group_size;  // 0 = ppn
};

const std::vector<AlgoCase>& algo_cases() {
  static const std::vector<AlgoCase> cases = {
      {coll::Algo::kPairwiseDirect, 0},
      {coll::Algo::kBruckDirect, 0},
      {coll::Algo::kHierarchical, 0},
      {coll::Algo::kNodeAware, 0},
      {coll::Algo::kLocalityAware, 4},
      {coll::Algo::kMultileaderNodeAware, 4},
  };
  return cases;
}

/// Rank body: plan once, execute `iters` times, validate every result.
Task<void> plan_and_check(Comm& world, const topo::Machine& machine,
                          const AlgoCase& c, std::size_t block, int iters) {
  const int me = world.rank();
  const int p = world.size();
  plan::PlanOptions popts;
  popts.algo = c.algo;
  popts.group_size = c.group_size;
  plan::AlltoallPlan plan =
      plan::make_plan(world, machine, model::test_params(), block, popts);
  EXPECT_EQ(plan.algo(), c.algo);
  EXPECT_EQ(coll::needs_locality(c.algo), plan.bundle() != nullptr);

  rt::Buffer send = world.alloc_buffer(static_cast<std::size_t>(p) * block);
  rt::Buffer recv = world.alloc_buffer(static_cast<std::size_t>(p) * block);
  test::fill_send(send, me, p, block);
  for (int it = 0; it < iters; ++it) {
    co_await plan.execute(rt::ConstView(send.view()), recv.view());
    EXPECT_TRUE(test::check_recv(recv, me, p, block))
        << coll::algo_name(c.algo) << " iteration " << it;
  }
  EXPECT_EQ(plan.executions(), static_cast<std::uint64_t>(iters));
}

// ---------------------------------------------------------------------------
// Plan-vs-direct equivalence
// ---------------------------------------------------------------------------

TEST(Plan, RepeatedExecuteCorrectOnSimulator) {
  const topo::Machine machine = topo::generic(2, 8);
  for (const AlgoCase& c : algo_cases()) {
    test::run_sim(machine, [&](Comm& world) -> Task<void> {
      return plan_and_check(world, machine, c, 32, 3);
    });
  }
}

TEST(Plan, RepeatedExecuteCorrectOnThreads) {
  const topo::Machine machine = topo::generic(2, 8);
  for (const AlgoCase& c : algo_cases()) {
    test::run_smp(machine.total_ranks(), [&](Comm& world) -> Task<void> {
      return plan_and_check(world, machine, c, 32, 3);
    });
  }
}

TEST(Plan, VirtualTimeMatchesDirectPath) {
  // The plan path must be performance-transparent: the simulated collective
  // time through a plan equals the legacy per-run path bit for bit, for
  // every algorithm and also across repetitions (scratch recycling must not
  // change what the model charges).
  for (const AlgoCase& c : algo_cases()) {
    bench::RunSpec spec;
    spec.machine = topo::generic(2, 8).desc();
    spec.net = model::test_params();
    spec.algo = c.algo;
    spec.group_size = c.group_size;
    spec.block = 64;
    spec.reps = 3;
    spec.use_plan = false;
    const bench::RunResult direct = bench::run_sim(spec);
    spec.use_plan = true;
    const bench::RunResult planned = bench::run_sim(spec);
    EXPECT_DOUBLE_EQ(direct.seconds, planned.seconds)
        << coll::algo_name(c.algo);
    EXPECT_EQ(direct.messages, planned.messages) << coll::algo_name(c.algo);
  }
}

// ---------------------------------------------------------------------------
// One-time construction
// ---------------------------------------------------------------------------

TEST(Plan, ConstructsCommunicatorsExactlyOnce) {
  const topo::Machine machine = topo::generic(2, 4);
  const int p = machine.total_ranks();
  const std::uint64_t before = rt::locality_build_count();
  std::uint64_t after_create = 0;
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    const int me = world.rank();
    plan::PlanCache cache;
    plan::PlanOptions popts;
    popts.algo = coll::Algo::kNodeAware;
    auto plan = cache.get_or_create(world, machine, model::test_params(), 16,
                                    popts);
    co_await rt::barrier(world);  // every rank has built its plan
    if (me == 0) {
      after_create = rt::locality_build_count();
    }
    rt::Buffer send = world.alloc_buffer(static_cast<std::size_t>(p) * 16);
    rt::Buffer recv = world.alloc_buffer(static_cast<std::size_t>(p) * 16);
    test::fill_send(send, me, p, 16);
    for (int it = 0; it < 5; ++it) {
      // Re-fetch from the cache each iteration, as a service handling
      // requests would: every fetch after the first must be a hit.
      auto again = cache.get_or_create(world, machine, model::test_params(),
                                       16, popts);
      EXPECT_EQ(again.get(), plan.get());
      co_await again->execute(rt::ConstView(send.view()), recv.view());
      EXPECT_TRUE(test::check_recv(recv, me, p, 16));
    }
    EXPECT_EQ(cache.stats().constructions, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 5u);
  });
  // One bundle build per rank at plan construction...
  EXPECT_EQ(after_create - before, static_cast<std::uint64_t>(p));
  // ...and not a single additional one across 5 executes on every rank.
  EXPECT_EQ(rt::locality_build_count(), after_create);
}

TEST(Plan, ZeroConstructionOnRepeatedExecuteThreads) {
  const topo::Machine machine = topo::generic(2, 4);
  const int p = machine.total_ranks();
  const std::uint64_t before = rt::locality_build_count();
  test::run_smp(p, [&](Comm& world) -> Task<void> {
    const int me = world.rank();
    plan::PlanOptions popts;
    popts.algo = coll::Algo::kMultileaderNodeAware;
    popts.group_size = 2;
    plan::AlltoallPlan plan =
        plan::make_plan(world, machine, model::test_params(), 8, popts);
    rt::Buffer send = world.alloc_buffer(static_cast<std::size_t>(p) * 8);
    rt::Buffer recv = world.alloc_buffer(static_cast<std::size_t>(p) * 8);
    test::fill_send(send, me, p, 8);
    for (int it = 0; it < 4; ++it) {
      co_await plan.execute(rt::ConstView(send.view()), recv.view());
      EXPECT_TRUE(test::check_recv(recv, me, p, 8));
    }
  });
  EXPECT_EQ(rt::locality_build_count() - before, static_cast<std::uint64_t>(p));
}

TEST(Plan, ScratchArenaRecyclesAfterFirstExecute) {
  // Covers both a redistribution algorithm (no gather/scatter) and the
  // leader-based ones, whose binomial gather/scatter staging also routes
  // through the arena: a warm plan must allocate nothing, on any of them.
  const topo::Machine machine = topo::generic(2, 4);
  for (coll::Algo algo :
       {coll::Algo::kNodeAware, coll::Algo::kHierarchical,
        coll::Algo::kMultileaderNodeAware}) {
    test::run_sim(machine, [&](Comm& world) -> Task<void> {
      const int me = world.rank();
      const int p = world.size();
      plan::PlanOptions popts;
      popts.algo = algo;
      popts.group_size = 2;
      plan::AlltoallPlan plan =
          plan::make_plan(world, machine, model::test_params(), 16, popts);
      rt::Buffer send = world.alloc_buffer(static_cast<std::size_t>(p) * 16);
      rt::Buffer recv = world.alloc_buffer(static_cast<std::size_t>(p) * 16);
      test::fill_send(send, me, p, 16);

      co_await plan.execute(rt::ConstView(send.view()), recv.view());
      const std::uint64_t first_allocs = plan.scratch().allocations();
      // A buffer can be recycled *within* one execute too (scatter staging
      // reusing the released gather staging), so count takes, not allocs.
      const std::uint64_t takes_per_execute =
          first_allocs + plan.scratch().reuses();
      EXPECT_GT(first_allocs, 0u) << coll::algo_name(algo);
      EXPECT_GT(plan.scratch().pooled(), 0u) << coll::algo_name(algo);

      for (int it = 0; it < 3; ++it) {
        co_await plan.execute(rt::ConstView(send.view()), recv.view());
      }
      // Warm plan: every later execute is served entirely from the arena.
      EXPECT_EQ(plan.scratch().allocations(), first_allocs)
          << coll::algo_name(algo);
      EXPECT_EQ(plan.scratch().allocations() + plan.scratch().reuses(),
                4 * takes_per_execute)
          << coll::algo_name(algo);
      EXPECT_TRUE(test::check_recv(recv, me, p, 16)) << coll::algo_name(algo);
    });
  }
}

// ---------------------------------------------------------------------------
// Cache policy
// ---------------------------------------------------------------------------

TEST(PlanCache, LruEvictsOldestKey) {
  const topo::Machine machine = topo::generic(1, 2);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    plan::PlanCache cache(2);
    plan::PlanOptions popts;
    popts.algo = coll::Algo::kPairwiseDirect;
    const model::NetParams net = model::test_params();

    cache.get_or_create(world, machine, net, 4, popts);
    auto p8 = cache.get_or_create(world, machine, net, 8, popts);
    EXPECT_EQ(cache.size(), 2u);

    // Touch block=4 so block=8 becomes least recently used...
    cache.get_or_create(world, machine, net, 4, popts);
    // ...then overflow: block=8 must be the one evicted.
    cache.get_or_create(world, machine, net, 16, popts);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_TRUE(cache.contains(world, 4, popts));
    EXPECT_FALSE(cache.contains(world, 8, popts));
    EXPECT_TRUE(cache.contains(world, 16, popts));

    // An evicted key reconstructs; shared_ptrs handed out earlier survive.
    EXPECT_EQ(p8->block(), 8u);
    cache.get_or_create(world, machine, net, 8, popts);
    EXPECT_EQ(cache.stats().constructions, 4u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().evictions, 2u);
    co_return;
  });
}

TEST(PlanCache, DistinguishesTuningOptions) {
  // Every PlanOptions field that changes execution must split the key —
  // notably batch_window and system_small_threshold, which are invisible
  // in the (algo, block, group) triple.
  const topo::Machine machine = topo::generic(1, 2);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    plan::PlanCache cache;
    const model::NetParams net = model::test_params();
    plan::PlanOptions a;
    a.algo = coll::Algo::kBatchedDirect;
    a.batch_window = 16;
    plan::PlanOptions b = a;
    b.batch_window = 64;
    cache.get_or_create(world, machine, net, 4, a);
    cache.get_or_create(world, machine, net, 4, b);
    plan::PlanOptions c;
    c.algo = coll::Algo::kSystemMpi;
    plan::PlanOptions d = c;
    d.system_small_threshold = 64;
    cache.get_or_create(world, machine, net, 4, c);
    cache.get_or_create(world, machine, net, 4, d);
    plan::PlanOptions e;
    e.algo = coll::Algo::kNodeAware;
    plan::PlanOptions f = e;
    f.inner = coll::Inner::kBruck;
    cache.get_or_create(world, machine, net, 4, e);
    cache.get_or_create(world, machine, net, 4, f);
    EXPECT_EQ(cache.stats().constructions, 6u);
    EXPECT_EQ(cache.stats().hits, 0u);
    co_return;
  });
}

TEST(PlanCache, EraseCommDropsOnlyThatCommunicator) {
  const topo::Machine machine = topo::generic(1, 2);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    plan::PlanCache cache;
    plan::PlanOptions popts;
    popts.algo = coll::Algo::kPairwiseDirect;
    const model::NetParams net = model::test_params();
    cache.get_or_create(world, machine, net, 4, popts);
    cache.get_or_create(world, machine, net, 8, popts);
    std::vector<int> members{0, 1};
    std::unique_ptr<Comm> sub = world.create_subcomm(members);
    cache.get_or_create(*sub, machine, net, 4, popts);
    EXPECT_EQ(cache.size(), 3u);

    // Before destroying `sub`, its entries must be purged so a later Comm
    // reusing the address can't alias them.
    EXPECT_EQ(cache.erase_comm(*sub), 1u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.contains(world, 4, popts));
    EXPECT_TRUE(cache.contains(world, 8, popts));
    EXPECT_FALSE(cache.contains(*sub, 4, popts));
    co_return;
  });
}

TEST(PlanCache, DistinguishesCommunicators) {
  const topo::Machine machine = topo::generic(1, 2);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    plan::PlanCache cache;
    plan::PlanOptions popts;
    popts.algo = coll::Algo::kPairwiseDirect;
    const model::NetParams net = model::test_params();
    cache.get_or_create(world, machine, net, 4, popts);
    // Same shape, different communicator identity: a subcomm spanning the
    // same ranks must get its own plan.
    std::vector<int> members{0, 1};
    std::unique_ptr<Comm> sub = world.create_subcomm(members);
    cache.get_or_create(*sub, machine, net, 4, popts);
    EXPECT_EQ(cache.stats().constructions, 2u);
    EXPECT_EQ(cache.size(), 2u);
    co_return;
  });
}

TEST(ShardedPlanCache, SingleThreadReplayMatchesPlainCache) {
  // One thread sticks to one shard, so a deterministic replay through a
  // ShardedPlanCache must count exactly what a plain PlanCache of that
  // shard's capacity counts — hits, misses, constructions, evictions and
  // the per-op slices. This is the pre-shard/post-shard accounting pin.
  const topo::Machine machine = topo::generic(1, 2);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    plan::ShardedPlanCache sharded(3, 1);
    plan::PlanCache plain(3);
    plan::PlanOptions popts;
    popts.algo = coll::Algo::kPairwiseDirect;
    const model::NetParams net = model::test_params();
    // A replay with re-references (hits), rotation past capacity
    // (evictions) and re-faults of evicted keys.
    const std::size_t script[] = {4, 8, 4, 16, 32, 8, 4, 64, 32, 4, 8};
    for (const std::size_t block : script) {
      sharded.get_or_create(world, machine, net, block, popts);
      plain.get_or_create(world, machine, net, block, popts);
    }
    const plan::PlanCache::Stats a = sharded.stats();
    const plan::PlanCache::Stats b = plain.stats();
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.constructions, b.constructions);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_GT(a.evictions, 0u);
    for (std::size_t op = 0; op < coll::kNumOpKinds; ++op) {
      EXPECT_EQ(a.per_op[op].hits, b.per_op[op].hits) << "op " << op;
      EXPECT_EQ(a.per_op[op].misses, b.per_op[op].misses) << "op " << op;
    }
    EXPECT_EQ(sharded.size(), plain.size());
    co_return;
  });
}

TEST(ShardedPlanCache, CapacitySplitAndEviction) {
  const topo::Machine machine = topo::generic(1, 2);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    plan::ShardedPlanCache cache(8, 4);
    EXPECT_EQ(cache.shard_count(), 4u);
    EXPECT_EQ(cache.capacity(), 8u);  // 4 shards x 2 plans
    // The at-least-one-plan floor: capacity 2 over 8 shards rounds up.
    plan::ShardedPlanCache floored(2, 8);
    EXPECT_EQ(floored.shard_count(), 8u);
    EXPECT_EQ(floored.capacity(), 8u);

    plan::PlanOptions popts;
    popts.algo = coll::Algo::kPairwiseDirect;
    const model::NetParams net = model::test_params();
    // This thread's shard holds 2 plans; three rotating keys must evict,
    // and the evicted plan's shared_ptr stays valid.
    auto p4 = cache.get_or_create(world, machine, net, 4, popts);
    cache.get_or_create(world, machine, net, 8, popts);
    cache.get_or_create(world, machine, net, 16, popts);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(p4->block(), 4u);

    EXPECT_EQ(cache.erase_comm(world), 2u);
    EXPECT_EQ(cache.size(), 0u);
    // Counters survive both erase_comm and clear.
    cache.clear();
    EXPECT_EQ(cache.stats().constructions, 3u);
    co_return;
  });
}

// ---------------------------------------------------------------------------
// make_plan contract
// ---------------------------------------------------------------------------

TEST(Plan, AutoSelectionMatchesTuner) {
  const topo::Machine machine = topo::generic_hier(4, 2, 2, 4);
  const model::NetParams net = model::omni_path();
  const coll::Choice expect = coll::select_algorithm(machine, net, 64);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    plan::AlltoallPlan plan = plan::make_plan(world, machine, net, 64);
    EXPECT_EQ(plan.algo(), expect.algo);
    EXPECT_EQ(plan.group_size(), expect.group_size);
    EXPECT_DOUBLE_EQ(plan.choice().predicted_seconds,
                     expect.predicted_seconds);
    co_return;
  });
}

TEST(Plan, TableBackedSelectionIsMemoized) {
  const topo::Machine machine = topo::generic_hier(4, 2, 2, 4);
  const model::NetParams net = model::omni_path();
  plan::TuningTable table;
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    plan::PlanOptions popts;
    popts.table = &table;
    plan::AlltoallPlan plan = plan::make_plan(world, machine, net, 64, popts);
    EXPECT_EQ(plan.algo(), table.lookup(machine, 64)->algo);
    co_return;
  });
  // All ranks consulted the shared table; only the very first consult ran
  // the closed-form model (lookups - hits == misses == 1).
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookups() - table.hits(), 1u);
}

TEST(Plan, RejectsMismatchedWorldAndBadBuffers) {
  const topo::Machine machine = topo::generic(2, 4);
  test::run_sim_flat(4, [&](Comm& world) -> Task<void> {
    EXPECT_THROW(
        plan::make_plan(world, machine, model::test_params(), 4),
        std::invalid_argument);
    co_return;
  });
  test::run_smp(1, [&](Comm& world) -> Task<void> {
    plan::PlanOptions popts;
    popts.algo = coll::Algo::kPairwiseDirect;
    plan::AlltoallPlan plan = plan::make_plan(
        world, topo::generic(1, 1), model::test_params(), 8, popts);
    rt::Buffer ok = rt::Buffer::real(8);
    rt::Buffer bad = rt::Buffer::real(4);
    EXPECT_THROW(
        rt::sync_wait(plan.execute(rt::ConstView(bad.view()), ok.view())),
        std::invalid_argument);
    co_return;
  });
}

// ---------------------------------------------------------------------------
// Tuning table
// ---------------------------------------------------------------------------

TEST(TuningTable, ChooseMemoizesSelection) {
  const topo::Machine machine = topo::dane(8);
  const model::NetParams net = model::omni_path();
  plan::TuningTable table;
  const coll::Choice first = table.choose(machine, net, 256);
  const coll::Choice again = table.choose(machine, net, 256);
  EXPECT_EQ(first.algo, again.algo);
  EXPECT_EQ(first.group_size, again.group_size);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookups(), 2u);
  EXPECT_EQ(table.hits(), 1u);
  // Different shape or size: distinct entries.
  table.choose(machine, net, 512);
  table.choose(topo::dane(16), net, 256);
  EXPECT_EQ(table.size(), 3u);
}

TEST(TuningTable, SaveLoadRoundTrips) {
  const model::NetParams net = model::omni_path();
  plan::TuningTable table;
  for (int nodes : {2, 8}) {
    for (std::size_t block : {std::size_t{4}, std::size_t{1024}}) {
      table.choose(topo::dane(nodes), net, block);
    }
  }
  std::stringstream ss;
  table.save(ss);
  plan::TuningTable loaded = plan::TuningTable::load(ss);
  EXPECT_EQ(loaded.size(), table.size());
  for (int nodes : {2, 8}) {
    for (std::size_t block : {std::size_t{4}, std::size_t{1024}}) {
      const auto want = table.lookup(topo::dane(nodes), block);
      const auto got = loaded.lookup(topo::dane(nodes), block);
      ASSERT_TRUE(want.has_value());
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(want->algo, got->algo);
      EXPECT_EQ(want->group_size, got->group_size);
      EXPECT_DOUBLE_EQ(want->predicted_seconds, got->predicted_seconds);
    }
  }
}

TEST(TuningTable, RejectsUnserializableMachineNames) {
  // Whitespace in a name would produce a save() output that load() cannot
  // parse; reject at entry time, before any offline computation is wasted.
  plan::TuningTable table;
  topo::MachineDesc desc;
  desc.name = "my cluster";
  desc.nodes = 2;
  desc.cores_per_numa = 4;
  const topo::Machine machine(desc);
  EXPECT_THROW(table.choose(machine, model::test_params(), 64),
               std::invalid_argument);
  EXPECT_THROW(table.lookup(machine, 64), std::invalid_argument);
  EXPECT_TRUE(table.empty());
}

TEST(TuningTable, LoadRejectsGarbage) {
  {
    std::stringstream ss("not a tuning table\n");
    EXPECT_THROW(plan::TuningTable::load(ss), std::runtime_error);
  }
  {
    std::stringstream ss("mca2a-tuning-table v1\ndane 8 112 not-a-number\n");
    EXPECT_THROW(plan::TuningTable::load(ss), std::runtime_error);
  }
  {
    // Algorithm index out of range.
    std::stringstream ss("mca2a-tuning-table v1\ndane 8 112 64 99 4 0.5\n");
    EXPECT_THROW(plan::TuningTable::load(ss), std::runtime_error);
  }
}

}  // namespace
}  // namespace mca2a
