/// Tests for the online autotuning subsystem (src/autotune/): Welford
/// statistics and exact profile merging, TuningTable v3 round trips and
/// v2/v1 migration, candidate pruning, selector explore/exploit behavior
/// and its off-mode bit-for-bit pin, completion-driven recording on both
/// backends, convergence of the harness's autotune mode, and cost-model
/// calibration recovering known ground-truth scales.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <sstream>
#include <vector>

#include "autotune/autotune.hpp"
#include "autotune/calibrator.hpp"
#include "autotune/profiler.hpp"
#include "autotune/selector.hpp"
#include "coll_ext/ext_tuner.hpp"
#include "core/tuner.hpp"
#include "harness/sweep.hpp"
#include "plan/plan.hpp"
#include "plan/tuning_table.hpp"
#include "runtime/collectives.hpp"
#include "test_util.hpp"

namespace mca2a {
namespace {

using autotune::ExecutionProfiler;
using autotune::make_profile_key;
using autotune::Mode;
using autotune::OnlineSelector;
using autotune::ProfileKey;
using autotune::SampleStats;

ProfileKey key_for(const topo::Machine& machine, std::size_t block, int algo,
                   int g, const char* backend = "sim") {
  return make_profile_key(machine, coll::OpKind::kAlltoall, block, algo, g,
                          backend);
}

// --- Welford statistics ------------------------------------------------------

TEST(SampleStats, WelfordMatchesClosedForm) {
  SampleStats s;
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.5, 9.0, 2.5};
  for (double x : xs) {
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) {
    mean += x;
  }
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) {
    var += (x - mean) * (x - mean);
  }
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_EQ(s.n, xs.size());
  EXPECT_NEAR(s.mean, mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_EQ(s.min, 1.0);
}

TEST(SampleStats, WelfordMatchesTwoPassOnRandomData) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(1e-6, 1e-3);
  std::vector<double> xs(1000);
  for (double& x : xs) {
    x = dist(rng);
  }
  SampleStats s;
  for (double x : xs) {
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) {
    mean += x;
  }
  mean /= 1000.0;
  double var = 0.0;
  for (double x : xs) {
    var += (x - mean) * (x - mean);
  }
  var /= 999.0;
  EXPECT_NEAR(s.mean, mean, mean * 1e-10);
  EXPECT_NEAR(s.variance(), var, var * 1e-8);
  EXPECT_EQ(s.min, *std::min_element(xs.begin(), xs.end()));
}

TEST(SampleStats, MergeEqualsConcatenation) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(0.5, 2.0);
  std::vector<double> xs(257);
  for (double& x : xs) {
    x = dist(rng);
  }
  // Split at an uneven point, accumulate separately, merge.
  SampleStats a, b, whole;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 100 ? a : b).add(xs[i]);
    whole.add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.n, whole.n);
  EXPECT_NEAR(a.mean, whole.mean, whole.mean * 1e-12);
  EXPECT_NEAR(a.m2, whole.m2, whole.m2 * 1e-9);
  EXPECT_EQ(a.min, whole.min);
}

TEST(SampleStats, MergeWithEmptyIsIdentity) {
  SampleStats a;
  a.add(2.0);
  a.add(4.0);
  const SampleStats before = a;
  SampleStats empty;
  a.merge(empty);
  EXPECT_EQ(a.n, before.n);
  EXPECT_EQ(a.mean, before.mean);
  empty.merge(a);
  EXPECT_EQ(empty.n, a.n);
  EXPECT_EQ(empty.mean, a.mean);
  EXPECT_EQ(empty.min, a.min);
}

// --- ExecutionProfiler -------------------------------------------------------

TEST(ExecutionProfiler, RecordLookupAndRevision) {
  const topo::Machine machine = topo::generic(2, 4);
  ExecutionProfiler p;
  const ProfileKey k = key_for(machine, 64, 1, 4);
  EXPECT_EQ(p.samples(k), 0u);
  EXPECT_FALSE(p.lookup(k).has_value());
  EXPECT_EQ(p.revision(), 0u);

  p.record(k, 1e-3);
  p.record(k, 3e-3);
  EXPECT_EQ(p.samples(k), 2u);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.total_samples(), 2u);
  EXPECT_EQ(p.revision(), 2u);
  const auto st = p.lookup(k);
  ASSERT_TRUE(st.has_value());
  EXPECT_NEAR(st->mean, 2e-3, 1e-12);
  EXPECT_EQ(st->min, 1e-3);

  // Poisoned samples are dropped, not folded in.
  p.record(k, -1.0);
  p.record(k, std::numeric_limits<double>::quiet_NaN());
  p.record(k, std::numeric_limits<double>::infinity());
  EXPECT_EQ(p.samples(k), 2u);
}

TEST(ExecutionProfiler, MergeCombinesProfiles) {
  const topo::Machine machine = topo::generic(2, 4);
  const ProfileKey ka = key_for(machine, 64, 1, 4);
  const ProfileKey kb = key_for(machine, 512, 2, 4);
  ExecutionProfiler a, b;
  a.record(ka, 1e-3);
  b.record(ka, 3e-3);
  b.record(kb, 5e-3);
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.samples(ka), 2u);
  EXPECT_NEAR(a.lookup(ka)->mean, 2e-3, 1e-12);
  EXPECT_EQ(a.samples(kb), 1u);
}

TEST(ExecutionProfiler, SnapshotSerializationIgnoresInsertionOrder) {
  // Distinct keys fed in opposite orders must serialize to identical
  // bytes: snapshot() sorts by key fields, and each key's statistics see
  // the same sample sequence, so nothing order-dependent survives.
  const topo::Machine machine = topo::generic(2, 4);
  std::vector<ProfileKey> keys;
  for (int algo = 0; algo < 4; ++algo) {
    for (std::size_t block : {16ul, 256ul, 4096ul}) {
      keys.push_back(key_for(machine, block, algo, 4));
    }
  }
  const auto feed = [](ExecutionProfiler& p, const ProfileKey& k, int salt) {
    for (int i = 0; i < 5; ++i) {
      p.record(k, 1e-4 * (salt + 1) + 1e-6 * i);
    }
  };
  ExecutionProfiler fwd;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    feed(fwd, keys[i], static_cast<int>(i));
  }
  ExecutionProfiler rev;
  for (std::size_t i = keys.size(); i-- > 0;) {
    feed(rev, keys[i], static_cast<int>(i));
  }
  std::ostringstream a, b;
  autotune::write_profile_section(a, fwd);
  autotune::write_profile_section(b, rev);
  EXPECT_FALSE(a.str().empty());
  EXPECT_EQ(a.str(), b.str());
}

TEST(ExecutionProfiler, CopyPreservesSnapshotBytes) {
  const topo::Machine machine = topo::generic(2, 4);
  ExecutionProfiler p(4);
  std::mt19937 rng(7);
  for (int i = 0; i < 100; ++i) {
    p.record(key_for(machine, 16ul << (rng() % 5), static_cast<int>(rng() % 3),
                     4),
             1e-5 * static_cast<double>(rng() % 1000 + 1));
  }
  const ExecutionProfiler copy(p);
  EXPECT_EQ(copy.shard_count(), p.shard_count());
  EXPECT_EQ(copy.revision(), p.revision());
  std::ostringstream a, b;
  autotune::write_profile_section(a, p);
  autotune::write_profile_section(b, copy);
  EXPECT_EQ(a.str(), b.str());

  ExecutionProfiler assigned;
  assigned = p;
  std::ostringstream c;
  autotune::write_profile_section(c, assigned);
  EXPECT_EQ(a.str(), c.str());
}

TEST(ExecutionProfiler, KeyValidationRejectsWhitespace) {
  const topo::Machine machine = topo::generic(1, 2);
  EXPECT_THROW(key_for(machine, 64, 0, 2, "has space"),
               std::invalid_argument);
  EXPECT_THROW(key_for(machine, 64, 0, 2, ""), std::invalid_argument);
  topo::MachineDesc desc = machine.desc();
  desc.name = "two words";
  EXPECT_THROW(key_for(topo::Machine(desc), 64, 0, 2),
               std::invalid_argument);
}

TEST(ExecutionProfiler, ProfileLineRoundTrip) {
  const topo::Machine machine = topo::dane(2);
  ExecutionProfiler p;
  p.record(key_for(machine, 64, 3, 112), 1.25e-4);
  p.record(key_for(machine, 64, 3, 112), 2.5e-4);
  p.record(make_profile_key(machine, coll::OpKind::kAllgather, 512, 1, 112,
                            "smp"),
           3.75e-4);
  std::stringstream ss;
  autotune::write_profile_section(ss, p);
  ExecutionProfiler q;
  std::string line;
  while (std::getline(ss, line)) {
    auto [key, stats] = autotune::parse_profile_line(line);
    q.merge_entry(key, stats);
  }
  EXPECT_EQ(q.size(), p.size());
  for (const auto& [key, stats] : p.snapshot()) {
    const auto got = q.lookup(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->n, stats.n);
    EXPECT_EQ(got->mean, stats.mean);  // max_digits10: exact round trip
    EXPECT_EQ(got->m2, stats.m2);
    EXPECT_EQ(got->min, stats.min);
  }
}

TEST(ExecutionProfiler, ParseRejectsMalformedLines) {
  EXPECT_THROW(autotune::parse_profile_line("prof dane 2 112"),
               std::runtime_error);
  EXPECT_THROW(autotune::parse_profile_line(
                   "entry dane 2 112 a2a 64 3 112 sim 1 1.0 0.0 1.0"),
               std::runtime_error);
  EXPECT_THROW(autotune::parse_profile_line(
                   "prof dane 2 112 bcast 64 3 112 sim 1 1.0 0.0 1.0"),
               std::runtime_error);
  // Algorithm index out of the op's range.
  EXPECT_THROW(autotune::parse_profile_line(
                   "prof dane 2 112 a2a 64 99 112 sim 1 1.0 0.0 1.0"),
               std::runtime_error);
  // Zero samples.
  EXPECT_THROW(autotune::parse_profile_line(
                   "prof dane 2 112 a2a 64 3 112 sim 0 1.0 0.0 1.0"),
               std::runtime_error);
}

TEST(ExecutionProfiler, NetSamplesNeverPoolWithSmpOrSim) {
  // Wall-clock socket time and in-process time are different quantities:
  // the same (machine, op, size, algorithm, group) under backend "net"
  // must key a distinct accumulator.
  const topo::Machine machine = topo::dane(2);
  ExecutionProfiler p;
  p.record(key_for(machine, 64, 3, 112, "net"), 5e-3);
  p.record(key_for(machine, 64, 3, 112, "smp"), 1e-4);
  EXPECT_EQ(p.size(), 2u);
  const auto net_stats = p.lookup(key_for(machine, 64, 3, 112, "net"));
  const auto smp_stats = p.lookup(key_for(machine, 64, 3, 112, "smp"));
  ASSERT_TRUE(net_stats.has_value());
  ASSERT_TRUE(smp_stats.has_value());
  EXPECT_EQ(net_stats->n, 1u);
  EXPECT_EQ(net_stats->mean, 5e-3);
  EXPECT_EQ(smp_stats->n, 1u);
  EXPECT_EQ(smp_stats->mean, 1e-4);
  EXPECT_FALSE(p.lookup(key_for(machine, 64, 3, 112, "sim")).has_value());
}

TEST(ExecutionProfiler, NetProfileLineRoundTrip) {
  // The on-disk format carries the backend token verbatim — a "net" line
  // written by a socket job must parse back to a net-keyed entry.
  auto [key, stats] = autotune::parse_profile_line(
      "prof dane 2 112 a2a 64 3 112 net 2 5e-03 1e-08 4e-03");
  EXPECT_EQ(key.backend, "net");
  EXPECT_EQ(stats.n, 2u);
  EXPECT_EQ(stats.mean, 5e-3);

  ExecutionProfiler p;
  p.merge_entry(key, stats);
  std::stringstream ss;
  autotune::write_profile_section(ss, p);
  EXPECT_NE(ss.str().find(" net "), std::string::npos);
  auto [key2, stats2] = autotune::parse_profile_line(
      ss.str().substr(0, ss.str().find('\n')));
  EXPECT_EQ(key2.backend, "net");
  EXPECT_EQ(stats2.mean, stats.mean);
  EXPECT_EQ(stats2.m2, stats.m2);
}

// --- TuningTable v3 ----------------------------------------------------------

TEST(TuningTableV3, EmptyProfileKeepsV2Header) {
  const topo::Machine machine = topo::dane(8);
  plan::TuningTable table;
  table.choose(machine, model::omni_path(), 64);
  std::stringstream ss;
  table.save(ss);
  EXPECT_EQ(ss.str().rfind("mca2a-tuning-table v2", 0), 0u);
}

TEST(TuningTableV3, ProfileRoundTripsThroughV3) {
  const topo::Machine machine = topo::dane(8);
  const model::NetParams net = model::omni_path();
  plan::TuningTable table;
  const coll::Choice c64 = table.choose(machine, net, 64);
  table.choose_allgather(machine, net, 512);
  table.profile().record(key_for(machine, 64, 3, 112), 2e-4);
  table.profile().record(key_for(machine, 64, 3, 112), 4e-4);
  table.profile().record(key_for(machine, 4096, 5, 4), 9e-4);

  std::stringstream ss;
  table.save(ss);
  EXPECT_EQ(ss.str().rfind("mca2a-tuning-table v3", 0), 0u);

  const plan::TuningTable loaded = plan::TuningTable::load(ss);
  // Decision entries survive...
  const auto hit = loaded.lookup(machine, 64);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->algo, c64.algo);
  EXPECT_EQ(hit->group_size, c64.group_size);
  ASSERT_TRUE(loaded.lookup_allgather(machine, 512).has_value());
  // ...and so does the measured profile — bit-exactly (max_digits10).
  EXPECT_EQ(loaded.profile().size(), 2u);
  const auto want = table.profile().lookup(key_for(machine, 64, 3, 112));
  const auto st = loaded.profile().lookup(key_for(machine, 64, 3, 112));
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->n, 2u);
  EXPECT_EQ(st->mean, want->mean);
  EXPECT_EQ(st->m2, want->m2);
  EXPECT_EQ(st->min, 2e-4);

  // A second save/load cycle is stable (still v3, same contents).
  std::stringstream ss2;
  loaded.save(ss2);
  const plan::TuningTable again = plan::TuningTable::load(ss2);
  EXPECT_EQ(again.profile().size(), 2u);
  EXPECT_EQ(again.size(), loaded.size());
}

TEST(TuningTableV3, NetProfileRoundTripsThroughTable) {
  // A table holding both net and smp samples of the same shape saves and
  // reloads them as separate entries — pooling across backends would let a
  // simulator number masquerade as a socket measurement.
  const topo::Machine machine = topo::dane(2);
  plan::TuningTable table;
  table.profile().record(key_for(machine, 64, 3, 112, "net"), 5e-3);
  table.profile().record(key_for(machine, 64, 3, 112, "smp"), 1e-4);
  std::stringstream ss;
  table.save(ss);
  const plan::TuningTable loaded = plan::TuningTable::load(ss);
  EXPECT_EQ(loaded.profile().size(), 2u);
  const auto net_stats =
      loaded.profile().lookup(key_for(machine, 64, 3, 112, "net"));
  const auto smp_stats =
      loaded.profile().lookup(key_for(machine, 64, 3, 112, "smp"));
  ASSERT_TRUE(net_stats.has_value());
  ASSERT_TRUE(smp_stats.has_value());
  EXPECT_EQ(net_stats->mean, 5e-3);
  EXPECT_EQ(smp_stats->mean, 1e-4);
}

TEST(TuningTableV3, V1AndV2FilesStillLoad) {
  {
    std::stringstream ss("mca2a-tuning-table v1\ndane 8 112 64 3 112 0.5\n");
    const plan::TuningTable t = plan::TuningTable::load(ss);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_TRUE(t.profile().empty());
  }
  {
    std::stringstream ss(
        "mca2a-tuning-table v2\ndane 8 112 ag 64 1 112 0.5\n");
    const plan::TuningTable t = plan::TuningTable::load(ss);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_TRUE(t.profile().empty());
  }
  {
    // v3 with no profile lines is fine too.
    std::stringstream ss(
        "mca2a-tuning-table v3\ndane 8 112 a2a 64 3 112 0.5\n");
    const plan::TuningTable t = plan::TuningTable::load(ss);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_TRUE(t.profile().empty());
  }
}

TEST(TuningTableV3, ProfileLinesInPreV3TablesAreRejected) {
  std::stringstream ss(
      "mca2a-tuning-table v2\nprof dane 2 112 a2a 64 3 112 sim 1 1.0 0.0 "
      "1.0\n");
  EXPECT_THROW(plan::TuningTable::load(ss), std::runtime_error);
}

TEST(TuningTableV3, BadProfileLinesAreRejected) {
  std::stringstream ss(
      "mca2a-tuning-table v3\nprof dane 2 112 a2a 64 99 112 sim 1 1.0 0.0 "
      "1.0\n");
  EXPECT_THROW(plan::TuningTable::load(ss), std::runtime_error);
}

TEST(TuningTableV3, LenientProfileStreamLoader) {
  const topo::Machine machine = topo::dane(2);
  plan::TuningTable table;
  table.choose(machine, model::omni_path(), 64);
  table.profile().record(key_for(machine, 64, 3, 112), 2e-4);
  std::stringstream ss;
  table.save(ss);

  ExecutionProfiler out;
  autotune::load_profile_stream(ss, out);
  EXPECT_EQ(out.size(), 1u);

  // v2 streams have no profiles: loads empty, does not throw.
  std::stringstream v2("mca2a-tuning-table v2\ndane 2 112 a2a 64 3 112 0.5\n");
  ExecutionProfiler none;
  autotune::load_profile_stream(v2, none);
  EXPECT_TRUE(none.empty());

  // Non-table streams are rejected.
  std::stringstream junk("not a table\n");
  EXPECT_THROW(autotune::load_profile_stream(junk, none), std::runtime_error);
}

// --- candidate pruning -------------------------------------------------------

TEST(RankCandidates, HeadMatchesSelectAlgorithmBitForBit) {
  for (const char* name : {"dane", "tuolomne"}) {
    for (int nodes : {2, 8}) {
      const topo::Machine machine = topo::by_name(name, nodes);
      const model::NetParams net = model::for_machine(name);
      for (std::size_t block : {4ul, 64ul, 512ul, 4096ul}) {
        const coll::Choice direct =
            coll::select_algorithm(machine, net, block);
        const auto ranked =
            coll::rank_alltoall_candidates(machine, net, block);
        ASSERT_FALSE(ranked.empty());
        EXPECT_EQ(ranked.front().algo, direct.algo);
        EXPECT_EQ(ranked.front().group_size, direct.group_size);
        EXPECT_EQ(ranked.front().predicted_seconds,
                  direct.predicted_seconds);
        for (std::size_t i = 1; i < ranked.size(); ++i) {
          EXPECT_GE(ranked[i].predicted_seconds,
                    ranked[i - 1].predicted_seconds);
        }
        EXPECT_LE(ranked.size(), 4u);
        EXPECT_LE(ranked.back().predicted_seconds,
                  4.0 * ranked.front().predicted_seconds);
      }
    }
  }
}

TEST(RankCandidates, AllgatherHeadMatchesSelector) {
  const topo::Machine machine = topo::dane(4);
  const model::NetParams net = model::omni_path();
  for (std::size_t block : {4ul, 512ul, 4096ul}) {
    const coll::AllgatherChoice direct =
        coll::select_allgather_algorithm(machine, net, block);
    const auto ranked = coll::rank_allgather_candidates(machine, net, block);
    ASSERT_FALSE(ranked.empty());
    EXPECT_EQ(ranked.front().algo, direct.algo);
    EXPECT_EQ(ranked.front().group_size, direct.group_size);
    for (std::size_t i = 1; i < ranked.size(); ++i) {
      EXPECT_GE(ranked[i].predicted_seconds,
                ranked[i - 1].predicted_seconds);
    }
  }
}

// --- OnlineSelector ----------------------------------------------------------

TEST(OnlineSelector, ModeParsing) {
  EXPECT_EQ(autotune::mode_from_string("off"), Mode::kOff);
  EXPECT_EQ(autotune::mode_from_string("observe"), Mode::kObserve);
  EXPECT_EQ(autotune::mode_from_string("adapt"), Mode::kAdapt);
  EXPECT_FALSE(autotune::mode_from_string("banana").has_value());
  EXPECT_FALSE(autotune::mode_from_string("").has_value());
}

TEST(OnlineSelector, OffAndObserveNeverSelect) {
  const topo::Machine machine = topo::dane(2);
  const model::NetParams net = model::omni_path();
  OnlineSelector off(Mode::kOff);
  OnlineSelector obs(Mode::kObserve);
  EXPECT_FALSE(off.choose_alltoall(machine, net, 64, "sim").has_value());
  EXPECT_FALSE(obs.choose_alltoall(machine, net, 64, "sim").has_value());
  EXPECT_FALSE(obs.choose_allgather(machine, net, 64, "sim").has_value());

  const ProfileKey k = key_for(machine, 64, 3, 112);
  off.record(k, 1e-3);
  EXPECT_TRUE(off.profiler().empty());  // off: recording is a no-op
  obs.record(k, 1e-3);
  EXPECT_EQ(obs.profiler().samples(k), 1u);  // observe: recorded
}

TEST(OnlineSelector, ExploresRoundRobinThenExploitsMeasuredWinner) {
  const topo::Machine machine = topo::generic(2, 4);
  const model::NetParams net = model::test_params();
  OnlineSelector::Config cfg;
  cfg.explore_target = 2;
  cfg.calibrate = false;
  OnlineSelector sel(Mode::kAdapt, cfg);
  const std::size_t block = 64;
  const auto ranked = coll::rank_alltoall_candidates(
      machine, net, block, cfg.plausible_factor, cfg.max_candidates);
  ASSERT_GE(ranked.size(), 2u);
  const std::uint64_t per_exec =
      static_cast<std::uint64_t>(machine.total_ranks());

  // Exploration: each candidate must be handed out explore_target times
  // (in executions), least-sampled first, before any exploitation. Make
  // the model's *last* candidate measure fastest.
  for (int round = 0; round < cfg.explore_target; ++round) {
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      const auto c = sel.choose_alltoall(machine, net, block, "sim");
      ASSERT_TRUE(c.has_value());
      EXPECT_EQ(c->algo, ranked[i].algo) << "round " << round;
      EXPECT_EQ(c->group_size, ranked[i].group_size);
      // One "execution": every rank records its sample. The last-ranked
      // candidate is measured 10x faster than the model thought.
      const double t = (i + 1 == ranked.size())
                           ? ranked[i].predicted_seconds / 10.0
                           : ranked[i].predicted_seconds;
      const ProfileKey k =
          key_for(machine, block, static_cast<int>(c->algo), c->group_size);
      for (std::uint64_t s = 0; s < per_exec; ++s) {
        sel.record(k, t);
      }
    }
  }
  EXPECT_EQ(sel.explorations(),
            static_cast<std::uint64_t>(cfg.explore_target) * ranked.size());
  EXPECT_EQ(sel.exploitations(), 0u);

  // Exploitation: the measured winner, not the model's head.
  const auto c = sel.choose_alltoall(machine, net, block, "sim");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->algo, ranked.back().algo);
  EXPECT_EQ(c->group_size, ranked.back().group_size);
  EXPECT_NEAR(c->predicted_seconds, ranked.back().predicted_seconds / 10.0,
              1e-12);
  EXPECT_EQ(sel.exploitations(), 1u);

  // Deterministic: an identical twin fed the identical history picks the
  // same candidate.
  OnlineSelector twin(Mode::kAdapt, cfg);
  twin.profiler().merge(sel.profiler());
  const auto c2 = twin.choose_alltoall(machine, net, block, "sim");
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->algo, c->algo);
  EXPECT_EQ(c2->group_size, c->group_size);
}

TEST(OnlineSelector, WarmProfilePersistsAcrossRestart) {
  const topo::Machine machine = topo::generic(2, 4);
  const model::NetParams net = model::test_params();
  OnlineSelector::Config cfg;
  cfg.explore_target = 1;
  cfg.calibrate = false;
  OnlineSelector sel(Mode::kAdapt, cfg);
  const std::size_t block = 256;
  const auto ranked = coll::rank_alltoall_candidates(
      machine, net, block, cfg.plausible_factor, cfg.max_candidates);
  const std::uint64_t per_exec =
      static_cast<std::uint64_t>(machine.total_ranks());
  for (const auto& cand : ranked) {
    const ProfileKey k = key_for(machine, block,
                                 static_cast<int>(cand.algo),
                                 cand.group_size);
    for (std::uint64_t s = 0; s < per_exec; ++s) {
      sel.record(k, cand.predicted_seconds);
    }
  }

  // "Shut down": profile travels inside a TuningTable v3 artifact.
  plan::TuningTable table;
  table.profile().merge(sel.profiler());
  std::stringstream file;
  table.save(file);

  // "Restart": the warmed selector exploits immediately, no exploration.
  const plan::TuningTable loaded = plan::TuningTable::load(file);
  OnlineSelector warm(Mode::kAdapt, cfg);
  warm.profiler().merge(loaded.profile());
  const auto c = warm.choose_alltoall(machine, net, block, "sim");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(warm.explorations(), 0u);
  EXPECT_EQ(warm.exploitations(), 1u);
}

// --- plan integration --------------------------------------------------------

TEST(AutotunePlan, OffModeMatchesModelBitForBit) {
  // A2A_AUTOTUNE unset in the test binary: make_plan with no selector must
  // reproduce the closed-form model's choices exactly.
  const topo::Machine machine = topo::dane(2);
  const model::NetParams net = model::omni_path();
  test::run_sim(
      machine,
      [&](rt::Comm& world) -> rt::Task<void> {
        for (std::size_t block : {4ul, 64ul, 512ul, 4096ul}) {
          const coll::Choice expect =
              coll::select_algorithm(machine, net, block);
          coll::AlltoallDesc desc;
          desc.block = block;
          plan::CollectivePlan p = plan::make_plan(world, machine, net, desc);
          EXPECT_EQ(p.algo(), expect.algo);
          EXPECT_EQ(p.group_size(), expect.group_size);
          EXPECT_EQ(p.predicted_seconds(), expect.predicted_seconds);
        }
        co_return;
      },
      net, /*carry_data=*/false);
}

TEST(AutotunePlan, CompletionFeedsProfilerOnSim) {
  const topo::Machine machine = topo::generic(2, 4);
  const int p = machine.total_ranks();
  const std::size_t block = 64;
  OnlineSelector sel(Mode::kObserve);
  test::run_sim(machine, [&](rt::Comm& world) -> rt::Task<void> {
    coll::AlltoallDesc desc;
    desc.block = block;
    desc.algo = coll::Algo::kPairwiseDirect;
    plan::PlanOptions popts;
    popts.autotune = &sel;
    plan::CollectivePlan pl =
        plan::make_plan(world, machine, model::test_params(), desc, popts);
    rt::Buffer send =
        world.alloc_buffer(static_cast<std::size_t>(p) * block);
    rt::Buffer recv =
        world.alloc_buffer(static_cast<std::size_t>(p) * block);
    co_await pl.execute(rt::ConstView(send.view()), recv.view());
    co_await pl.execute(rt::ConstView(send.view()), recv.view());
  });
  // Two executions, one sample per rank each — keyed to the sim backend.
  const ProfileKey k =
      key_for(machine, block,
              static_cast<int>(coll::Algo::kPairwiseDirect), machine.ppn());
  EXPECT_EQ(sel.profiler().samples(k), static_cast<std::uint64_t>(2 * p));
  const auto st = sel.profiler().lookup(k);
  ASSERT_TRUE(st.has_value());
  EXPECT_GT(st->min, 0.0);
}

TEST(AutotunePlan, CompletionFeedsProfilerOnSmp) {
  const topo::Machine machine = topo::generic(1, 4);
  const int p = machine.total_ranks();
  const std::size_t block = 32;
  OnlineSelector sel(Mode::kObserve);
  test::run_smp(p, [&](rt::Comm& world) -> rt::Task<void> {
    EXPECT_EQ(world.backend_name(), "smp");
    coll::AlltoallDesc desc;
    desc.block = block;
    desc.algo = coll::Algo::kNonblockingDirect;
    plan::PlanOptions popts;
    popts.autotune = &sel;
    plan::CollectivePlan pl =
        plan::make_plan(world, machine, model::test_params(), desc, popts);
    rt::Buffer send = rt::Buffer::real(static_cast<std::size_t>(p) * block);
    rt::Buffer recv = rt::Buffer::real(static_cast<std::size_t>(p) * block);
    co_await pl.execute(rt::ConstView(send.view()), recv.view());
  });
  const ProfileKey k =
      key_for(machine, block,
              static_cast<int>(coll::Algo::kNonblockingDirect), machine.ppn(),
              "smp");
  EXPECT_EQ(sel.profiler().samples(k), static_cast<std::uint64_t>(p));
}

TEST(AutotunePlan, BackendNames) {
  test::run_sim(topo::generic(1, 2), [](rt::Comm& world) -> rt::Task<void> {
    EXPECT_EQ(world.backend_name(), "sim");
    co_return;
  });
  test::run_smp(2, [](rt::Comm& world) -> rt::Task<void> {
    EXPECT_EQ(world.backend_name(), "smp");
    co_return;
  });
}

// --- harness autotune mode ---------------------------------------------------

TEST(AutotuneHarness, ConvergesToBestStaticWithinFivePercent) {
  const topo::Machine machine = topo::dane(2);
  const model::NetParams net = model::omni_path();
  const std::size_t block = 64;
  const int execs = 20;

  OnlineSelector sel(Mode::kAdapt);
  bench::RunSpec spec;
  spec.machine = machine.desc();
  spec.net = net;
  spec.block = block;
  spec.reps = execs;
  spec.autotune = true;
  spec.selector = &sel;
  const bench::RunResult online = bench::run_sim(spec);
  ASSERT_EQ(online.rep_seconds.size(), static_cast<std::size_t>(execs));
  ASSERT_EQ(online.rep_algos.size(), static_cast<std::size_t>(execs));

  // Bounded warmup: exploration ends after candidates x explore_target
  // executions, and the choice is stable from then on.
  const auto ranked = coll::rank_alltoall_candidates(
      machine, net, block, sel.config().plausible_factor,
      sel.config().max_candidates);
  const int warmup = static_cast<int>(ranked.size()) *
                     sel.config().explore_target;
  ASSERT_LT(warmup, execs);
  for (int i = warmup; i < execs; ++i) {
    EXPECT_EQ(online.rep_algos[i], online.rep_algos.back());
    EXPECT_EQ(online.rep_groups[i], online.rep_groups.back());
  }

  // The converged choice, re-measured under the identical static
  // protocol, is within 5% of the best static candidate (steady mean,
  // first rep dropped as warmup).
  const auto steady = [&](coll::Algo algo, int g) {
    bench::RunSpec st;
    st.machine = machine.desc();
    st.net = net;
    st.algo = algo;
    st.group_size = g;
    st.block = block;
    st.reps = execs;
    st.use_plan = true;
    const bench::RunResult r = bench::run_sim(st);
    double sum = 0.0;
    for (std::size_t i = 1; i < r.rep_seconds.size(); ++i) {
      sum += r.rep_seconds[i];
    }
    return sum / static_cast<double>(r.rep_seconds.size() - 1);
  };
  double best = std::numeric_limits<double>::infinity();
  double winner = -1.0;
  for (const coll::Choice& c : ranked) {
    const double t = steady(c.algo, c.group_size);
    best = std::min(best, t);
    if (static_cast<int>(c.algo) == online.rep_algos.back() &&
        c.group_size == online.rep_groups.back()) {
      winner = t;
    }
  }
  ASSERT_GT(winner, 0.0) << "converged choice not in the candidate set";
  EXPECT_LE(winner, 1.05 * best);
}

TEST(AutotuneHarness, RejectsIncompatibleModes) {
  bench::RunSpec spec;
  spec.machine = topo::generic(1, 4).desc();
  spec.net = model::test_params();
  spec.autotune = true;
  spec.vector = true;
  EXPECT_THROW(bench::run_sim(spec), std::invalid_argument);
  spec.vector = false;
  spec.overlap = 2;
  EXPECT_THROW(bench::run_sim(spec), std::invalid_argument);
  spec.overlap = 1;
  spec.collect_trace = true;
  EXPECT_THROW(bench::run_sim(spec), std::invalid_argument);
}

// --- cost-model calibration --------------------------------------------------

TEST(CostCalibrator, RecoversGroundTruthScales) {
  const topo::Machine machine = topo::dane(2);
  const model::NetParams net = model::omni_path();
  // Ground truth: the "real" machine runs with 2x the latency terms and
  // half the bandwidth terms of the preset.
  const model::NetParams truth = autotune::scale_params(net, 2.0, 0.5);

  ExecutionProfiler prof;
  for (std::size_t block : {4ul, 64ul, 512ul, 4096ul}) {
    for (const auto& [algo, g] :
         {std::pair<coll::Algo, int>{coll::Algo::kPairwiseDirect, 112},
          {coll::Algo::kNodeAware, 112},
          {coll::Algo::kMultileaderNodeAware, 4}}) {
      const double t = coll::predict_alltoall_seconds(algo, machine, truth,
                                                      block, g);
      const ProfileKey k =
          key_for(machine, block, static_cast<int>(algo), g);
      for (int s = 0; s < 5; ++s) {
        prof.record(k, t);
      }
    }
  }

  const autotune::Calibration cal =
      autotune::fit_cost_model(prof, machine, net, "sim");
  ASSERT_TRUE(cal.fitted);
  EXPECT_EQ(cal.entries, 12u);
  EXPECT_NEAR(cal.alpha_scale, 2.0, 0.4);
  EXPECT_NEAR(cal.beta_scale, 0.5, 0.15);
  EXPECT_LT(cal.rms_after, cal.rms_before);
  EXPECT_LT(cal.rms_after, 0.1);

  // Applying the fit brings predictions close to the "real" machine for a
  // size class that was never profiled.
  const model::NetParams fitted = cal.apply(net);
  const double want = coll::predict_alltoall_seconds(
      coll::Algo::kNodeAware, machine, truth, 2048, 112);
  const double got = coll::predict_alltoall_seconds(
      coll::Algo::kNodeAware, machine, fitted, 2048, 112);
  const double before = coll::predict_alltoall_seconds(
      coll::Algo::kNodeAware, machine, net, 2048, 112);
  EXPECT_LT(std::abs(got - want) / want, std::abs(before - want) / want);
}

TEST(CostCalibrator, InsufficientDataStaysIdentity) {
  const topo::Machine machine = topo::dane(2);
  ExecutionProfiler prof;
  prof.record(key_for(machine, 64, 3, 112), 1e-4);
  const autotune::Calibration cal =
      autotune::fit_cost_model(prof, machine, model::omni_path(), "sim");
  EXPECT_FALSE(cal.fitted);
  EXPECT_EQ(cal.alpha_scale, 1.0);
  EXPECT_EQ(cal.beta_scale, 1.0);
  const model::NetParams net = model::omni_path();
  const model::NetParams same = cal.apply(net);
  EXPECT_EQ(same.at(topo::Level::kNetwork).alpha,
            net.at(topo::Level::kNetwork).alpha);
}

TEST(CostCalibrator, SelectorUsesCalibrationForUnseenSizeClasses) {
  // Seed the profiler with ground-truth (alpha x4) measurements for a few
  // size classes; the selector's calibration must then be visible through
  // calibration() for the machine/backend pair.
  const topo::Machine machine = topo::dane(2);
  const model::NetParams net = model::omni_path();
  const model::NetParams truth = autotune::scale_params(net, 4.0, 1.0);
  OnlineSelector sel(Mode::kAdapt);
  for (std::size_t block : {4ul, 64ul, 512ul, 4096ul}) {
    const double t = coll::predict_alltoall_seconds(
        coll::Algo::kPairwiseDirect, machine, truth, block, 112);
    sel.record(key_for(machine, block,
                       static_cast<int>(coll::Algo::kPairwiseDirect), 112),
               t);
    const double t2 = coll::predict_alltoall_seconds(
        coll::Algo::kNodeAware, machine, truth, block, 112);
    sel.record(key_for(machine, block,
                       static_cast<int>(coll::Algo::kNodeAware), 112),
               t2);
  }
  const autotune::Calibration cal = sel.calibration(machine, net, "sim");
  ASSERT_TRUE(cal.fitted);
  EXPECT_GT(cal.alpha_scale, 1.5);
}

}  // namespace
}  // namespace mca2a
