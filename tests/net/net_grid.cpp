/// \file net_grid.cpp
/// Multi-process acceptance suite for the TCP backend, launched by a2arun:
///
///   a2arun -n 8 ./build/tests/net_grid grid       full equivalence grid
///   a2arun -n 4 ./build/tests/net_grid teardown   socket-loss semantics
///   a2arun -n 4 ./build/tests/net_grid harness    run_sim(backend = "net")
///   a2arun -n 4 ./build/tests/net_grid teardown_trace DIR
///                                                 exit-order file integrity
///
/// `grid` runs the cross-backend equivalence matrix over real sockets:
/// point-to-point matching semantics, every alltoall algorithm (direct and
/// locality, direct calls and planned start()/wait()), alltoallv,
/// allgather and allreduce — verifying payloads against the exact
/// deterministic pattern the smp/sim unit tests use (test_util.hpp's
/// pattern(src, dst, k)), so a pass here means byte-identical results to
/// the in-process backends. Message sizes are chosen to cross the eager,
/// rendezvous and multi-rail striping paths for the thresholds in effect.
///
/// `teardown` checks the failure model: one rank drops every socket
/// without the kBye handshake (a simulated crash) while its peers are
/// blocked receiving from it; the peers must get a std::runtime_error from
/// the wait — never a hang — and subsequent sends to the dead peer must
/// fail fast too.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "coll_ext/allgather.hpp"
#include "coll_ext/allreduce.hpp"
#include "coll_ext/alltoallv.hpp"
#include "core/alltoall.hpp"
#include "harness/sweep.hpp"
#include "model/presets.hpp"
#include "net/bootstrap.hpp"
#include "net/net_comm.hpp"
#include "obs/metrics.hpp"
#include "plan/plan.hpp"
#include "runtime/comm_bundle.hpp"
#include "runtime/task.hpp"
#include "topo/presets.hpp"

namespace {

using mca2a::rt::Buffer;
using mca2a::rt::Comm;
using mca2a::rt::ConstView;
using mca2a::rt::MutView;
using mca2a::rt::Request;
using mca2a::rt::Task;

int g_rank = -1;
int g_failures = 0;

void fail(const std::string& what) {
  std::fprintf(stderr, "net_grid[rank %d] FAIL: %s\n", g_rank, what.c_str());
  ++g_failures;
}

#define CHECK(cond)                          \
  do {                                       \
    if (!(cond)) {                           \
      fail(std::string("(" #cond ") at ") +  \
           __FILE__ + ":" +                  \
           std::to_string(__LINE__));        \
    }                                        \
  } while (0)

/// The exact pattern of tests/test_util.hpp — the byte-identity contract
/// with the smp and sim suites.
std::byte pattern(int src, int dst, std::size_t k) {
  return static_cast<std::byte>(
      (src * 131 + dst * 17 + static_cast<int>(k % 251) * 7) & 0xFF);
}

void fill_send(Buffer& buf, int me, int p, std::size_t block) {
  auto bytes = buf.view();
  for (int d = 0; d < p; ++d) {
    for (std::size_t k = 0; k < block; ++k) {
      bytes.ptr[d * block + k] = pattern(me, d, k);
    }
  }
}

bool check_recv(const Buffer& buf, int me, int p, std::size_t block,
                const char* what) {
  auto bytes = buf.view();
  for (int s = 0; s < p; ++s) {
    for (std::size_t k = 0; k < block; ++k) {
      if (bytes.ptr[s * block + k] != pattern(s, me, k)) {
        fail(std::string(what) + ": block from " + std::to_string(s) +
             " byte " + std::to_string(k) + " corrupt");
        return false;
      }
    }
  }
  return true;
}

/// Factor the world into (nodes, ppn) for the locality algorithms: the
/// most even split with ppn even when possible (groups of 2 must divide).
std::pair<int, int> factor(int p) {
  for (int nodes : {4, 2}) {
    if (p % nodes == 0 && p / nodes >= 2) {
      return {nodes, p / nodes};
    }
  }
  return {1, p};
}

// --- p2p semantics over real sockets ---------------------------------------

Task<void> p2p_suite(Comm& c) {
  const int p = c.size();
  const int me = c.rank();
  const int right = (me + 1) % p;
  const int left = (me + p - 1) % p;

  // Ring sendrecv across the eager/rendezvous/striping size spectrum.
  // 4 MiB is above every stripe threshold the ctest entries use, so with
  // rails > 1 it exercises out-of-order multi-rail reassembly.
  for (std::size_t bytes :
       {std::size_t{4}, std::size_t{1} << 10, std::size_t{64} << 10,
        std::size_t{4} << 20}) {
    Buffer s = Buffer::real(bytes);
    Buffer r = Buffer::real(bytes);
    for (std::size_t k = 0; k < bytes; ++k) {
      s.data()[k] = pattern(me, right, k);
    }
    co_await c.sendrecv(s.view(), right, 5, r.view(), left, 5);
    bool ok = true;
    for (std::size_t k = 0; k < bytes && ok; ++k) {
      ok = r.data()[k] == pattern(left, me, k);
    }
    CHECK(ok);
  }

  // Zero-byte messages complete and match.
  co_await c.sendrecv(ConstView{}, right, 6, MutView{}, left, 6);

  // Non-overtaking per pair: 64 back-to-back eager messages.
  {
    Buffer b = Buffer::real(4);
    if (me == 0) {
      for (int i = 0; i < 64; ++i) {
        std::memcpy(b.data(), &i, 4);
        co_await c.send(b.view(), 1, 7);
      }
    } else if (me == 1) {
      for (int i = 0; i < 64; ++i) {
        co_await c.recv(b.view(), 0, 7);
        int got = -1;
        std::memcpy(&got, b.data(), 4);
        CHECK(got == i);
      }
    }
  }

  // Wildcards: everyone sends to rank 0 with a rank-specific tag; rank 0
  // drains with kAnySource/kAnyTag and checks the sum. Runs on a dedicated
  // all-ranks subcomm: an any/any receive on the world comm could match
  // traffic from ranks that already raced ahead into the next suite.
  {
    std::vector<int> all(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      all[static_cast<std::size_t>(r)] = r;
    }
    auto wc = c.create_subcomm(all);
    Buffer b = Buffer::real(4);
    if (me != 0) {
      const int v = 10 + me;
      std::memcpy(b.data(), &v, 4);
      co_await wc->send(b.view(), 0, 100 + me);
    } else {
      int sum = 0;
      for (int i = 0; i < p - 1; ++i) {
        co_await wc->recv(b.view(), mca2a::rt::kAnySource, mca2a::rt::kAnyTag);
        int v = 0;
        std::memcpy(&v, b.data(), 4);
        sum += v;
      }
      int want = 0;
      for (int r = 1; r < p; ++r) {
        want += 10 + r;
      }
      CHECK(sum == want);
    }
  }

  // Truncation surfaces as a runtime_error at the receiver's wait, on both
  // the eager and the rendezvous path, and the job keeps going afterwards.
  for (std::size_t bytes : {std::size_t{64}, std::size_t{256} << 10}) {
    Buffer big = Buffer::real(bytes);
    Buffer small = Buffer::real(8);
    if (me == 0) {
      co_await c.send(big.view(), 1, 8);
    } else if (me == 1) {
      bool threw = false;
      try {
        co_await c.recv(small.view(), 0, 8);
      } catch (const std::runtime_error&) {
        threw = true;
      }
      CHECK(threw);
    }
  }

  // Subcomm isolation: same tag on parent and child never cross-matches.
  {
    std::vector<int> mine;
    for (int r = me % 2; r < p; r += 2) {
      mine.push_back(r);
    }
    auto sub = c.create_subcomm(mine);
    Buffer b = Buffer::real(4);
    const int sright = (sub->rank() + 1) % sub->size();
    const int sleft = (sub->rank() + sub->size() - 1) % sub->size();
    const int v = 1000 + me;
    std::memcpy(b.data(), &v, 4);
    Buffer r2 = Buffer::real(4);
    co_await sub->sendrecv(b.view(), sright, 5, r2.view(), sleft, 5);
    int got = 0;
    std::memcpy(&got, r2.data(), 4);
    CHECK(got == 1000 + mine[static_cast<std::size_t>(sleft)]);
  }
}

// --- collectives: the equivalence grid --------------------------------------

Task<void> alltoall_suite(Comm& world, const mca2a::topo::Machine& machine) {
  using mca2a::coll::Algo;
  const int p = world.size();
  const int me = world.rank();

  const mca2a::rt::LocalityComms lc =
      mca2a::rt::build_locality_comms(world, machine, machine.ppn());
  const int g2 = machine.ppn() % 2 == 0 ? 2 : 1;
  const mca2a::rt::LocalityComms lc2 =
      mca2a::rt::build_locality_comms(world, machine, g2);

  struct Case {
    Algo algo;
    const mca2a::rt::LocalityComms* lc;
    const char* name;
  };
  const Case cases[] = {
      {Algo::kPairwiseDirect, nullptr, "pairwise"},
      {Algo::kNonblockingDirect, nullptr, "nonblocking"},
      {Algo::kBruckDirect, nullptr, "bruck"},
      {Algo::kBatchedDirect, nullptr, "batched"},
      {Algo::kSystemMpi, nullptr, "system_mpi"},
      {Algo::kHierarchical, &lc, "hierarchical"},
      {Algo::kMultileader, &lc2, "multileader"},
      {Algo::kNodeAware, &lc, "node_aware"},
      {Algo::kLocalityAware, &lc2, "locality_aware"},
      {Algo::kMultileaderNodeAware, &lc2, "mlna"},
  };
  // 8 B stays eager everywhere; 20 KiB crosses the default eager/rndv
  // threshold; the tiny-threshold ctest variant pushes all three of these
  // through rendezvous + striping.
  for (std::size_t block : {std::size_t{8}, std::size_t{20} << 10}) {
    for (const Case& tc : cases) {
      Buffer s = Buffer::real(block * static_cast<std::size_t>(p));
      Buffer r = Buffer::real(block * static_cast<std::size_t>(p));
      fill_send(s, me, p, block);
      mca2a::coll::Options opts;
      co_await mca2a::coll::run_alltoall(tc.algo, world, tc.lc, s.view(),
                                         r.view(), block, opts);
      check_recv(r, me, p, block,
                 (std::string("alltoall/") + tc.name + "/" +
                  std::to_string(block))
                     .c_str());
    }
  }

  // One big direct exchange: per-pair messages of 512 KiB exceed the
  // default stripe threshold, so with rails > 1 this drives every rail.
  {
    const std::size_t block = std::size_t{512} << 10;
    Buffer s = Buffer::real(block * static_cast<std::size_t>(p));
    Buffer r = Buffer::real(block * static_cast<std::size_t>(p));
    fill_send(s, me, p, block);
    mca2a::coll::Options opts;
    co_await mca2a::coll::run_alltoall(Algo::kNonblockingDirect, world,
                                       nullptr, s.view(), r.view(), block,
                                       opts);
    check_recv(r, me, p, block, "alltoall/big_striped");
  }
}

Task<void> planned_suite(Comm& world, const mca2a::topo::Machine& machine) {
  using mca2a::coll::Algo;
  const int p = world.size();
  const int me = world.rank();
  const std::size_t block = 1024;

  // Planned collective, blocking execute(): plan once, run twice (the
  // second run must reuse warm state).
  mca2a::coll::AlltoallDesc desc;
  desc.block = block;
  desc.algo = Algo::kNodeAware;
  auto plan = mca2a::plan::make_plan(world, machine,
                                     mca2a::model::test_params(), desc, {});
  Buffer s = Buffer::real(block * static_cast<std::size_t>(p));
  Buffer r = Buffer::real(block * static_cast<std::size_t>(p));
  for (int rep = 0; rep < 2; ++rep) {
    fill_send(s, me, p, block);
    co_await plan.execute(s.view(), r.view());
    check_recv(r, me, p, block, "plan/execute");
  }

  // start()/wait(): two planned collectives in flight at once, each in its
  // own tag stream — the never-cross-match guarantee over real sockets.
  mca2a::coll::AlltoallDesc desc2;
  desc2.block = block;
  desc2.algo = Algo::kPairwiseDirect;
  auto plan2 = mca2a::plan::make_plan(world, machine,
                                      mca2a::model::test_params(), desc2, {});
  Buffer s2 = Buffer::real(block * static_cast<std::size_t>(p));
  Buffer r2 = Buffer::real(block * static_cast<std::size_t>(p));
  fill_send(s, me, p, block);
  fill_send(s2, me, p, block);
  auto h1 = plan.start(s.view(), r.view());
  auto h2 = plan2.start(s2.view(), r2.view());
  CHECK(h1.tag_stream() != h2.tag_stream());
  co_await h2.wait();
  co_await h1.wait();
  check_recv(r, me, p, block, "plan/start1");
  check_recv(r2, me, p, block, "plan/start2");
  CHECK(h1.seconds() > 0.0);  // wall-clock timing feeds the autotuner
}

Task<void> vector_suite(Comm& world, const mca2a::topo::Machine& machine) {
  const int p = world.size();
  const int me = world.rank();

  // Skewed alltoallv: rank i sends (i + j + 1) * 16 bytes to rank j.
  auto count = [](int i, int j) {
    return static_cast<std::size_t>((i + j + 1) * 16);
  };
  std::vector<std::size_t> scounts, rcounts;
  for (int j = 0; j < p; ++j) {
    scounts.push_back(count(me, j));
    rcounts.push_back(count(j, me));
  }
  const auto sdispl = mca2a::coll::displs_from_counts(scounts);
  const auto rdispl = mca2a::coll::displs_from_counts(rcounts);
  const std::size_t stot =
      std::accumulate(scounts.begin(), scounts.end(), std::size_t{0});
  const std::size_t rtot =
      std::accumulate(rcounts.begin(), rcounts.end(), std::size_t{0});
  Buffer s = Buffer::real(stot);
  Buffer r = Buffer::real(rtot);
  for (int j = 0; j < p; ++j) {
    for (std::size_t k = 0; k < scounts[static_cast<std::size_t>(j)]; ++k) {
      s.data()[sdispl[static_cast<std::size_t>(j)] + k] = pattern(me, j, k);
    }
  }

  const mca2a::rt::LocalityComms lc =
      mca2a::rt::build_locality_comms(world, machine, machine.ppn());
  using VAlgo = mca2a::coll::AlltoallvAlgo;
  for (VAlgo algo : {VAlgo::kPairwise, VAlgo::kNonblocking,
                     VAlgo::kHierarchical, VAlgo::kMultileaderNodeAware}) {
    std::memset(r.data(), 0, rtot);
    co_await mca2a::coll::run_alltoallv(
        algo, world, &lc, s.view(), scounts, sdispl, r.view(), rcounts,
        rdispl);
    bool ok = true;
    for (int j = 0; j < p && ok; ++j) {
      for (std::size_t k = 0; k < rcounts[static_cast<std::size_t>(j)] && ok;
           ++k) {
        ok = r.data()[rdispl[static_cast<std::size_t>(j)] + k] ==
             pattern(j, me, k);
      }
    }
    CHECK(ok);
  }
}

Task<void> ext_suite(Comm& world, const mca2a::topo::Machine& machine) {
  const int p = world.size();
  const int me = world.rank();
  const mca2a::rt::LocalityComms lc =
      mca2a::rt::build_locality_comms(world, machine, machine.ppn());

  // Allgather: every variant must produce the same rank-ordered bytes.
  const std::size_t block = 600;  // not a power of two, crosses packets
  Buffer contrib = Buffer::real(block);
  for (std::size_t k = 0; k < block; ++k) {
    contrib.data()[k] = pattern(me, 0, k);
  }
  Buffer all = Buffer::real(block * static_cast<std::size_t>(p));
  for (int variant = 0; variant < 3; ++variant) {
    std::memset(all.data(), 0, all.size());
    if (variant == 0) {
      co_await mca2a::coll::allgather_ring(world, contrib.view(), all.view());
    } else if (variant == 1) {
      co_await mca2a::coll::allgather_bruck(world, contrib.view(),
                                            all.view());
    } else {
      co_await mca2a::coll::allgather_locality_aware(lc, contrib.view(),
                                                     all.view());
    }
    bool ok = true;
    for (int sr = 0; sr < p && ok; ++sr) {
      for (std::size_t k = 0; k < block && ok; ++k) {
        ok = all.data()[sr * block + k] == pattern(sr, 0, k);
      }
    }
    CHECK(ok);
  }

  // Allreduce (sum of int64): recursive doubling, Rabenseifner and the
  // node-aware variant must all equal the analytic sum.
  const std::size_t n = static_cast<std::size_t>(p) * 4;
  for (int variant = 0; variant < 3; ++variant) {
    Buffer data = Buffer::real(n * sizeof(std::int64_t));
    auto vals = data.typed<std::int64_t>();
    for (std::size_t i = 0; i < n; ++i) {
      vals[i] = static_cast<std::int64_t>(me + 1) *
                static_cast<std::int64_t>(i + 1);
    }
    auto op = mca2a::coll::sum_combiner<std::int64_t>();
    if (variant == 0) {
      co_await mca2a::coll::allreduce_recursive_doubling(world, data.view(),
                                                         op);
    } else if (variant == 1) {
      co_await mca2a::coll::allreduce_rabenseifner(world, data.view(), op);
    } else {
      co_await mca2a::coll::allreduce_node_aware(lc, data.view(), op);
    }
    const std::int64_t ranksum =
        static_cast<std::int64_t>(p) * (p + 1) / 2;
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) {
      ok = vals[i] == ranksum * static_cast<std::int64_t>(i + 1);
    }
    CHECK(ok);
  }
}

int run_grid() {
  auto world = mca2a::net::NetComm::process_world();
  g_rank = world->rank();
  const auto [nodes, ppn] = factor(world->size());
  const mca2a::topo::Machine machine = mca2a::topo::generic(nodes, ppn);

  auto run_suite = [&](const char* name, Task<void> task) {
    try {
      mca2a::rt::sync_wait(std::move(task));
    } catch (const std::exception& e) {
      fail(std::string(name) + ": uncaught " + e.what());
      throw;
    }
  };
  run_suite("p2p", p2p_suite(*world));
  run_suite("alltoall", alltoall_suite(*world, machine));
  run_suite("planned", planned_suite(*world, machine));
  run_suite("vector", vector_suite(*world, machine));
  run_suite("ext", ext_suite(*world, machine));

  // Multi-rail accounting: when the job runs more than one rail, the big
  // striped exchanges above must have moved bytes on a rail other than 0.
  const auto& opts = world->endpoint().options();
  auto& reg = mca2a::obs::metrics();
  CHECK(reg.counter_value("net.rail.0.tx_bytes") > 0);
  if (opts.rails > 1 && world->size() > 1) {
    std::uint64_t other = 0;
    for (int rail = 1; rail < opts.rails; ++rail) {
      other += reg.counter_value("net.rail." + std::to_string(rail) +
                                 ".tx_bytes");
    }
    CHECK(other > 0);
  }
  CHECK(reg.counter_value("net.eager_tx") > 0);
  CHECK(reg.counter_value("net.rndv_tx") > 0);

  if (g_failures == 0 && g_rank == 0) {
    std::fprintf(stderr, "net_grid: all checks passed on %d ranks\n",
                 world->size());
  }
  return g_failures == 0 ? 0 : 1;
}

// --- teardown: crash semantics ----------------------------------------------

int run_teardown() {
  auto world = mca2a::net::NetComm::process_world();
  g_rank = world->rank();
  const int victim = 1;
  if (world->size() < 3) {
    std::fprintf(stderr, "net_grid teardown needs >= 3 ranks\n");
    return 1;
  }

  if (world->rank() == victim) {
    // Die without the kBye handshake while the peers are mid-wait.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    world->endpoint().abort_for_test();
    return 0;
  }

  Buffer b = Buffer::real(1 << 20);
  bool threw = false;
  try {
    const Request r = world->irecv(b.view(), victim, 3);
    world->wait_try({&r, 1});  // blocks; must throw, not hang
  } catch (const std::runtime_error& e) {
    threw = true;
    CHECK(std::string(e.what()).find("lost") != std::string::npos);
  }
  CHECK(threw);

  // The endpoint is now fatal: new operations fail fast, never hang.
  threw = false;
  try {
    Buffer s = Buffer::real(8);
    (void)world->isend(s.view(), victim, 4);
  } catch (const std::runtime_error&) {
    threw = true;
  }
  CHECK(threw);

  if (g_failures == 0 && world->rank() == 0) {
    std::fprintf(stderr, "net_grid: teardown checks passed on %d ranks\n",
                 world->size());
  }
  return g_failures == 0 ? 0 : 1;
}

// --- teardown_trace: exit-order file integrity -------------------------------

std::string g_trace_dir;

bool file_is_complete_json(const std::string& path,
                           const std::vector<std::string>& must_contain) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "net_grid[rank %d] FAIL: missing %s\n", g_rank,
                 path.c_str());
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  while (!text.empty() &&
         (text.back() == '\n' || text.back() == ' ' || text.back() == '\t')) {
    text.pop_back();
  }
  if (text.empty() || text.back() != '}') {
    std::fprintf(stderr, "net_grid[rank %d] FAIL: %s is torn (no closing "
                 "brace)\n", g_rank, path.c_str());
    return false;
  }
  for (const std::string& needle : must_contain) {
    if (text.find(needle) == std::string::npos) {
      std::fprintf(stderr, "net_grid[rank %d] FAIL: %s lacks %s\n", g_rank,
                   path.c_str(), needle.c_str());
      return false;
    }
  }
  return true;
}

/// Registered FIRST in teardown_trace mode, so it runs LAST at exit —
/// after the world's static destructor flushed the trace/metrics writers
/// and after the recorder's own atexit hook re-ran them. Whatever the
/// interleaving, the files on disk must be complete by now.
void check_trace_files_at_exit() {
  char name[64];
  std::snprintf(name, sizeof(name), "net-rank%05d.trace.json", g_rank);
  std::vector<std::string> wants = {"\"traceEvents\"", "net.bootstrap",
                                    "\"dropped_events\""};
  if (g_rank != 0) {
    // Non-reference ranks calibrated against rank 0 at bootstrap.
    wants.push_back("\"clock_offset_s\"");
  }
  bool ok = file_is_complete_json(g_trace_dir + "/" + name, wants);
  ok = file_is_complete_json(g_trace_dir + "/metrics-rank" +
                                 std::to_string(g_rank) + ".json",
                             {}) &&
       ok;
  if (g_rank == 0) {
    ok = file_is_complete_json(g_trace_dir + "/cluster-metrics.json",
                               {"net.bootstrap_micros", "\"imbalance\""}) &&
         ok;
  }
  if (!ok) {
    std::_Exit(1);
  }
  std::fprintf(stderr, "net_grid[rank %d]: exit-order trace files OK\n",
               g_rank);
}

/// Normal-path exit with a *static* world: its destructor runs during
/// static/exit unwinding, interleaved with the trace recorder's atexit
/// writer — the ordering hazard the world teardown's explicit
/// obs::flush_env_writers() call defends against. The checker above then
/// verifies no file ended up torn.
int run_teardown_trace(const std::string& out_dir) {
  const mca2a::net::NetOptions opts = mca2a::net::options_from_env();
  g_rank = opts.rank;
  g_trace_dir = out_dir;
  // The cluster-metrics writer runs before the trace writer's own
  // create_directories; make sure the destination exists up front.
  std::filesystem::create_directories(out_dir);
  setenv("A2A_TRACE", out_dir.c_str(), 1);
  setenv("A2A_METRICS",
         (out_dir + "/metrics-rank" + std::to_string(opts.rank)).c_str(), 1);
  setenv("A2A_CLUSTER_METRICS",
         (out_dir + "/cluster-metrics.json").c_str(), 1);
  std::atexit(&check_trace_files_at_exit);

  // Function-local static: constructed after the atexit registration
  // above, so it is destroyed before the checker runs.
  static std::unique_ptr<mca2a::net::NetComm> world =
      mca2a::net::NetComm::connect_world(opts);
  const int p = world->size();
  const int me = world->rank();

  // Enough traffic to cross the eager and rendezvous paths, so the trace
  // carries flow arrows in both directions on every rank.
  auto traffic = [&]() -> Task<void> {
    const int right = (me + 1) % p;
    const int left = (me + p - 1) % p;
    for (std::size_t bytes : {std::size_t{64}, std::size_t{64} << 10}) {
      Buffer s = Buffer::real(bytes);
      Buffer r = Buffer::real(bytes);
      co_await world->sendrecv(s.view(), right, 9, r.view(), left, 9);
    }
  };
  mca2a::rt::sync_wait(traffic());
  return g_failures == 0 ? 0 : 1;
}

// --- harness: run_sim(backend = "net") ---------------------------------------

/// The figure-bench entry point driving real sockets: every rank process
/// issues the identical run_sim calls and must get back the identical
/// wall-clock RunResult. Must not touch NetComm directly — run_sim owns
/// the process's one world.
int run_harness() {
  const mca2a::net::NetOptions opts = mca2a::net::options_from_env();
  const auto [nodes, ppn] = factor(opts.size);
  g_rank = opts.rank;

  mca2a::bench::RunSpec spec;
  spec.backend = "net";
  spec.machine.name = "net-localhost";
  spec.machine.nodes = nodes;
  spec.machine.cores_per_numa = ppn;
  spec.net = mca2a::model::test_params();
  spec.block = 512;

  // Direct algorithm, then the plan path on the same world: the second
  // call must reuse the process-global mesh (a fresh bootstrap would hang).
  spec.algo = mca2a::coll::Algo::kPairwiseDirect;
  const mca2a::bench::RunResult direct = mca2a::bench::run_sim(spec);
  CHECK(direct.seconds > 0.0);
  CHECK(direct.messages > 0);

  spec.algo = mca2a::coll::Algo::kNodeAware;
  spec.use_plan = true;
  spec.reps = 2;
  const mca2a::bench::RunResult planned = mca2a::bench::run_sim(spec);
  CHECK(planned.seconds > 0.0);
  CHECK(planned.rep_seconds.size() == 2);

  // Online autotuning over real sockets: rank 0's selector decides, the
  // decision is broadcast, and every rank reports the same trajectory.
  spec.use_plan = false;
  spec.autotune = true;
  spec.reps = 4;
  const mca2a::bench::RunResult tuned = mca2a::bench::run_sim(spec);
  CHECK(tuned.seconds > 0.0);
  CHECK(tuned.rep_algos.size() == 4);
  CHECK(tuned.rep_groups.size() == 4);

  if (g_failures == 0 && opts.rank == 0) {
    std::fprintf(stderr, "net_grid: harness checks passed on %d ranks\n",
                 opts.size);
  }
  return g_failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "grid";
  try {
    if (mode == "grid") {
      return run_grid();
    }
    if (mode == "teardown") {
      return run_teardown();
    }
    if (mode == "harness") {
      return run_harness();
    }
    if (mode == "teardown_trace") {
      if (argc < 3) {
        std::fprintf(stderr, "net_grid: teardown_trace needs an output dir\n");
        return 2;
      }
      return run_teardown_trace(argv[2]);
    }
    std::fprintf(stderr, "net_grid: unknown mode '%s'\n", mode.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "net_grid[rank %d]: uncaught %s\n", g_rank,
                 e.what());
    return 1;
  }
}
