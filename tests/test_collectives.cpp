/// Correctness tests for the collective building blocks, run on BOTH
/// backends (the simulator with payload carrying, and real threads) across
/// a grid of communicator sizes, roots and block sizes.

#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <vector>

#include "runtime/collectives.hpp"
#include "test_util.hpp"

namespace mca2a {
namespace {

using rt::Buffer;
using rt::Comm;
using rt::ConstView;
using rt::MutView;
using rt::Task;

enum class Backend { kSim, kSmp };

const char* name(Backend b) { return b == Backend::kSim ? "sim" : "smp"; }

void run_on(Backend b, int ranks,
            const std::function<Task<void>(Comm&)>& body) {
  if (b == Backend::kSim) {
    test::run_sim_flat(ranks, body);
  } else {
    test::run_smp(ranks, body);
  }
}

struct Grid {
  Backend backend;
  int ranks;
  int root;
  std::size_t block;
};

std::string grid_name(const ::testing::TestParamInfo<Grid>& info) {
  const Grid& g = info.param;
  return std::string(name(g.backend)) + "_p" + std::to_string(g.ranks) +
         "_root" + std::to_string(g.root) + "_b" + std::to_string(g.block);
}

std::vector<Grid> make_grid() {
  std::vector<Grid> grid;
  for (Backend b : {Backend::kSim, Backend::kSmp}) {
    for (int ranks : {1, 2, 3, 5, 8, 16}) {
      std::vector<int> roots{0};
      if (ranks > 1) {
        roots.push_back(ranks - 1);  // non-zero root exercises rotation
      }
      for (int root : roots) {
        for (std::size_t block : {std::size_t{1}, std::size_t{64}}) {
          grid.push_back(Grid{b, ranks, root, block});
        }
      }
    }
  }
  return grid;
}

class CollectiveGrid : public ::testing::TestWithParam<Grid> {};

INSTANTIATE_TEST_SUITE_P(AllBackends, CollectiveGrid,
                         ::testing::ValuesIn(make_grid()), grid_name);

/// Byte k of rank r's contribution.
std::byte contrib(int r, std::size_t k) {
  return static_cast<std::byte>((r * 37 + static_cast<int>(k % 199) * 3 + 1) &
                                0xFF);
}

TEST_P(CollectiveGrid, GatherLinear) {
  const Grid g = GetParam();
  run_on(g.backend, g.ranks, [g](Comm& c) -> Task<void> {
    Buffer send = Buffer::real(g.block);
    for (std::size_t k = 0; k < g.block; ++k) {
      send.data()[k] = contrib(c.rank(), k);
    }
    Buffer recv = Buffer::real(c.rank() == g.root ? g.block * g.ranks : 0);
    co_await rt::gather_linear(c, send.view(), recv.view(), g.root);
    if (c.rank() == g.root) {
      for (int r = 0; r < g.ranks; ++r) {
        for (std::size_t k = 0; k < g.block; ++k) {
          EXPECT_EQ(recv.data()[r * g.block + k], contrib(r, k))
              << "rank " << r << " byte " << k;
        }
      }
    }
  });
}

TEST_P(CollectiveGrid, GatherBinomial) {
  const Grid g = GetParam();
  run_on(g.backend, g.ranks, [g](Comm& c) -> Task<void> {
    Buffer send = Buffer::real(g.block);
    for (std::size_t k = 0; k < g.block; ++k) {
      send.data()[k] = contrib(c.rank(), k);
    }
    Buffer recv = Buffer::real(c.rank() == g.root ? g.block * g.ranks : 0);
    co_await rt::gather_binomial(c, send.view(), recv.view(), g.root);
    if (c.rank() == g.root) {
      for (int r = 0; r < g.ranks; ++r) {
        for (std::size_t k = 0; k < g.block; ++k) {
          EXPECT_EQ(recv.data()[r * g.block + k], contrib(r, k));
        }
      }
    }
  });
}

TEST_P(CollectiveGrid, ScatterLinear) {
  const Grid g = GetParam();
  run_on(g.backend, g.ranks, [g](Comm& c) -> Task<void> {
    Buffer send = Buffer::real(c.rank() == g.root ? g.block * g.ranks : 0);
    if (c.rank() == g.root) {
      for (int r = 0; r < g.ranks; ++r) {
        for (std::size_t k = 0; k < g.block; ++k) {
          send.data()[r * g.block + k] = contrib(r, k);
        }
      }
    }
    Buffer recv = Buffer::real(g.block);
    co_await rt::scatter_linear(c, send.view(), recv.view(), g.root);
    for (std::size_t k = 0; k < g.block; ++k) {
      EXPECT_EQ(recv.data()[k], contrib(c.rank(), k));
    }
  });
}

TEST_P(CollectiveGrid, ScatterBinomial) {
  const Grid g = GetParam();
  run_on(g.backend, g.ranks, [g](Comm& c) -> Task<void> {
    Buffer send = Buffer::real(c.rank() == g.root ? g.block * g.ranks : 0);
    if (c.rank() == g.root) {
      for (int r = 0; r < g.ranks; ++r) {
        for (std::size_t k = 0; k < g.block; ++k) {
          send.data()[r * g.block + k] = contrib(r, k);
        }
      }
    }
    Buffer recv = Buffer::real(g.block);
    co_await rt::scatter_binomial(c, send.view(), recv.view(), g.root);
    for (std::size_t k = 0; k < g.block; ++k) {
      EXPECT_EQ(recv.data()[k], contrib(c.rank(), k));
    }
  });
}

TEST_P(CollectiveGrid, Bcast) {
  const Grid g = GetParam();
  run_on(g.backend, g.ranks, [g](Comm& c) -> Task<void> {
    Buffer buf = Buffer::real(g.block);
    if (c.rank() == g.root) {
      for (std::size_t k = 0; k < g.block; ++k) {
        buf.data()[k] = contrib(g.root, k);
      }
    }
    co_await rt::bcast(c, buf.view(), g.root);
    for (std::size_t k = 0; k < g.block; ++k) {
      EXPECT_EQ(buf.data()[k], contrib(g.root, k));
    }
  });
}

TEST_P(CollectiveGrid, Allgather) {
  const Grid g = GetParam();
  run_on(g.backend, g.ranks, [g](Comm& c) -> Task<void> {
    Buffer send = Buffer::real(g.block);
    for (std::size_t k = 0; k < g.block; ++k) {
      send.data()[k] = contrib(c.rank(), k);
    }
    Buffer recv = Buffer::real(g.block * g.ranks);
    co_await rt::allgather(c, send.view(), recv.view());
    for (int r = 0; r < g.ranks; ++r) {
      for (std::size_t k = 0; k < g.block; ++k) {
        EXPECT_EQ(recv.data()[r * g.block + k], contrib(r, k));
      }
    }
  });
}

TEST(Collectives, BarrierSynchronizes) {
  // In virtual time, nobody may leave the barrier before the slowest rank
  // has entered it.
  constexpr int kRanks = 6;
  std::vector<double> enter(kRanks), leave(kRanks);
  test::run_sim_flat(kRanks, [&](Comm& c) -> Task<void> {
    // Stagger entry with fake local work proportional to rank.
    c.charge_copy(static_cast<std::size_t>(c.rank()) * 10 * 1000 * 1000);
    enter[c.rank()] = c.now();
    co_await rt::barrier(c);
    leave[c.rank()] = c.now();
  });
  const double latest_enter = *std::max_element(enter.begin(), enter.end());
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_GE(leave[r], latest_enter) << "rank " << r << " left early";
  }
}

TEST(Collectives, GatherAutoSelectsAndWorks) {
  for (std::size_t block : {std::size_t{8}, std::size_t{32 * 1024}}) {
    test::run_sim_flat(4, [block](Comm& c) -> Task<void> {
      Buffer send = Buffer::real(block);
      for (std::size_t k = 0; k < block; ++k) {
        send.data()[k] = contrib(c.rank(), k);
      }
      Buffer recv = Buffer::real(c.rank() == 0 ? block * 4 : 0);
      co_await rt::gather(c, send.view(), recv.view(), 0);
      if (c.rank() == 0) {
        for (int r = 0; r < 4; ++r) {
          EXPECT_EQ(recv.data()[r * block], contrib(r, 0));
        }
      }
    });
  }
}

TEST(Collectives, CommSplitByParity) {
  test::run_sim_flat(6, [](Comm& c) -> Task<void> {
    auto sub = co_await rt::comm_split(c, c.rank() % 2, c.rank());
    EXPECT_NE(sub, nullptr);
    EXPECT_EQ(sub->size(), 3);
    EXPECT_EQ(sub->rank(), c.rank() / 2);
    // Verify the new communicator actually routes messages.
    Buffer b = Buffer::real(4);
    if (sub->rank() == 0) {
      b.typed<int>()[0] = c.rank();
      co_await sub->send(b.view(), 2, 0);
    } else if (sub->rank() == 2) {
      co_await sub->recv(b.view(), 0, 0);
      EXPECT_EQ(b.typed<int>()[0], c.rank() % 2);
    }
  });
}

TEST(Collectives, CommSplitUndefinedColor) {
  test::run_sim_flat(4, [](Comm& c) -> Task<void> {
    const int color = c.rank() == 0 ? -1 : 0;
    auto sub = co_await rt::comm_split(c, color, 0);
    if (c.rank() == 0) {
      EXPECT_EQ(sub, nullptr);
    } else {
      EXPECT_NE(sub, nullptr);
      EXPECT_EQ(sub->size(), 3);
    }
  });
}

TEST(Collectives, CommSplitKeyOrdersRanks) {
  test::run_sim_flat(4, [](Comm& c) -> Task<void> {
    // Reverse order via descending keys.
    auto sub = co_await rt::comm_split(c, 0, -c.rank());
    EXPECT_NE(sub, nullptr);
    EXPECT_EQ(sub->rank(), c.size() - 1 - c.rank());
  });
}

TEST(Collectives, SmpCommSplitWorks) {
  test::run_smp(4, [](Comm& c) -> Task<void> {
    auto sub = co_await rt::comm_split(c, c.rank() / 2, c.rank());
    EXPECT_NE(sub, nullptr);
    EXPECT_EQ(sub->size(), 2);
    co_await rt::barrier(*sub);
  });
}

}  // namespace
}  // namespace mca2a
