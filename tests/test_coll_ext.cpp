/// Correctness of the extension collectives (allgather and allreduce
/// families) on both backends, across machine shapes, group sizes and
/// payload sizes — the paper's §5 "extend to other collectives".

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <numeric>
#include <vector>

#include "coll_ext/allgather.hpp"
#include "coll_ext/allreduce.hpp"
#include "test_util.hpp"

namespace mca2a {
namespace {

using rt::Buffer;
using rt::Comm;
using rt::LocalityComms;
using rt::Task;

enum class Backend { kSim, kSmp };

struct Shape {
  Backend backend;
  int nodes;
  int ppn;
  int group;  // 0 = whole node
  std::size_t block;
};

std::string shape_name(const ::testing::TestParamInfo<Shape>& info) {
  const Shape& s = info.param;
  return std::string(s.backend == Backend::kSim ? "sim" : "smp") + "_n" +
         std::to_string(s.nodes) + "x" + std::to_string(s.ppn) + "_g" +
         std::to_string(s.group) + "_b" + std::to_string(s.block);
}

std::vector<Shape> shapes() {
  std::vector<Shape> out;
  for (Backend b : {Backend::kSim, Backend::kSmp}) {
    for (auto [nodes, ppn] : {std::pair{2, 4}, {3, 6}, {4, 4}}) {
      for (int g : {0, 2}) {
        for (std::size_t block : {std::size_t{8}, std::size_t{64}}) {
          out.push_back(Shape{b, nodes, ppn, g, block});
        }
      }
    }
  }
  return out;
}

void run_shape(const Shape& s,
               const std::function<Task<void>(Comm&, const topo::Machine&,
                                              int)>& body) {
  const topo::Machine machine = topo::generic(s.nodes, s.ppn);
  const int g = s.group == 0 ? s.ppn : s.group;
  auto rank_main = [&](Comm& world) -> Task<void> {
    co_await body(world, machine, g);
  };
  if (s.backend == Backend::kSim) {
    test::run_sim(machine, rank_main);
  } else {
    test::run_smp(machine.total_ranks(), rank_main);
  }
}

std::byte contrib(int r, std::size_t k) {
  return static_cast<std::byte>((r * 41 + static_cast<int>(k % 97) + 5) &
                                0xFF);
}

class ExtGrid : public ::testing::TestWithParam<Shape> {};
INSTANTIATE_TEST_SUITE_P(Shapes, ExtGrid, ::testing::ValuesIn(shapes()),
                         shape_name);

TEST_P(ExtGrid, AllgatherBruck) {
  run_shape(GetParam(), [&](Comm& c, const topo::Machine&,
                            int) -> Task<void> {
    const std::size_t block = GetParam().block;
    const int p = c.size();
    Buffer send = Buffer::real(block);
    for (std::size_t k = 0; k < block; ++k) {
      send.data()[k] = contrib(c.rank(), k);
    }
    Buffer recv = Buffer::real(block * p);
    co_await coll::allgather_bruck(c, send.view(), recv.view());
    for (int r = 0; r < p; ++r) {
      for (std::size_t k = 0; k < block; ++k) {
        EXPECT_EQ(recv.data()[r * block + k], contrib(r, k))
            << "rank " << r << " byte " << k;
      }
    }
  });
}

TEST_P(ExtGrid, AllgatherHierarchical) {
  run_shape(GetParam(), [&](Comm& c, const topo::Machine& m,
                            int g) -> Task<void> {
    const std::size_t block = GetParam().block;
    const int p = c.size();
    LocalityComms lc = rt::build_locality_comms(c, m, g, false);
    Buffer send = Buffer::real(block);
    for (std::size_t k = 0; k < block; ++k) {
      send.data()[k] = contrib(c.rank(), k);
    }
    Buffer recv = Buffer::real(block * p);
    co_await coll::allgather_hierarchical(lc, send.view(), recv.view());
    for (int r = 0; r < p; ++r) {
      for (std::size_t k = 0; k < block; ++k) {
        EXPECT_EQ(recv.data()[r * block + k], contrib(r, k));
      }
    }
  });
}

TEST_P(ExtGrid, AllgatherLocalityAware) {
  run_shape(GetParam(), [&](Comm& c, const topo::Machine& m,
                            int g) -> Task<void> {
    const std::size_t block = GetParam().block;
    const int p = c.size();
    LocalityComms lc = rt::build_locality_comms(c, m, g, false);
    Buffer send = Buffer::real(block);
    for (std::size_t k = 0; k < block; ++k) {
      send.data()[k] = contrib(c.rank(), k);
    }
    Buffer recv = Buffer::real(block * p);
    co_await coll::allgather_locality_aware(lc, send.view(), recv.view());
    for (int r = 0; r < p; ++r) {
      for (std::size_t k = 0; k < block; ++k) {
        EXPECT_EQ(recv.data()[r * block + k], contrib(r, k));
      }
    }
  });
}

TEST_P(ExtGrid, AllreduceRecursiveDoublingSum) {
  run_shape(GetParam(), [&](Comm& c, const topo::Machine&,
                            int) -> Task<void> {
    const int p = c.size();
    constexpr int kElems = 17;
    Buffer data = Buffer::real(kElems * sizeof(std::int64_t));
    auto v = data.typed<std::int64_t>();
    for (int i = 0; i < kElems; ++i) {
      v[i] = c.rank() * 100 + i;
    }
    co_await coll::allreduce_recursive_doubling(
        c, data.view(), coll::sum_combiner<std::int64_t>());
    for (int i = 0; i < kElems; ++i) {
      const std::int64_t want =
          static_cast<std::int64_t>(p) * (p - 1) / 2 * 100 +
          static_cast<std::int64_t>(p) * i;
      EXPECT_EQ(v[i], want) << "element " << i;
    }
  });
}

TEST_P(ExtGrid, AllreduceRabenseifnerSum) {
  run_shape(GetParam(), [&](Comm& c, const topo::Machine&,
                            int) -> Task<void> {
    const int p = c.size();
    const int elems = 3 * p + 1;  // ragged chunks
    Buffer data = Buffer::real(elems * sizeof(double));
    auto v = data.typed<double>();
    for (int i = 0; i < elems; ++i) {
      v[i] = c.rank() + 0.5 * i;
    }
    co_await coll::allreduce_rabenseifner(c, data.view(),
                                          coll::sum_combiner<double>());
    for (int i = 0; i < elems; ++i) {
      const double want = p * (p - 1) / 2.0 + p * 0.5 * i;
      EXPECT_DOUBLE_EQ(v[i], want) << "element " << i;
    }
  });
}

TEST_P(ExtGrid, AllreduceNodeAwareMax) {
  run_shape(GetParam(), [&](Comm& c, const topo::Machine& m,
                            int g) -> Task<void> {
    const int p = c.size();
    LocalityComms lc = rt::build_locality_comms(c, m, g, false);
    constexpr int kElems = 9;
    Buffer data = Buffer::real(kElems * sizeof(std::int32_t));
    auto v = data.typed<std::int32_t>();
    for (int i = 0; i < kElems; ++i) {
      v[i] = ((c.rank() + i) % p) * 10;  // max over ranks = (p-1)*10
    }
    co_await coll::allreduce_node_aware(lc, data.view(),
                                        coll::max_combiner<std::int32_t>());
    for (int i = 0; i < kElems; ++i) {
      EXPECT_EQ(v[i], (p - 1) * 10) << "element " << i;
    }
  });
}

TEST(ExtCollectives, ReduceBinomialToNonzeroRoot) {
  test::run_sim_flat(7, [](Comm& c) -> Task<void> {
    Buffer data = Buffer::real(4 * sizeof(std::int64_t));
    auto v = data.typed<std::int64_t>();
    for (int i = 0; i < 4; ++i) {
      v[i] = c.rank() + i;
    }
    co_await coll::reduce_binomial(c, data.view(),
                                   coll::sum_combiner<std::int64_t>(),
                                   /*root=*/3);
    if (c.rank() == 3) {
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(v[i], 21 + 7 * i);  // sum 0..6 = 21
      }
    }
  });
}

TEST(ExtCollectives, RabenseifnerRejectsTooFewElements) {
  test::run_sim_flat(8, [](Comm& c) -> Task<void> {
    Buffer data = Buffer::real(4 * sizeof(double));  // 4 elems < 8 ranks
    EXPECT_THROW(rt::sync_wait(coll::allreduce_rabenseifner(
                     c, data.view(), coll::sum_combiner<double>())),
                 std::invalid_argument);
    co_return;
  });
}

TEST(ExtCollectives, AllreduceMinCombiner) {
  test::run_sim_flat(5, [](Comm& c) -> Task<void> {
    Buffer data = Buffer::real(sizeof(std::int32_t));
    data.typed<std::int32_t>()[0] = 100 - c.rank();
    co_await coll::allreduce_recursive_doubling(
        c, data.view(), coll::min_combiner<std::int32_t>());
    EXPECT_EQ(data.typed<std::int32_t>()[0], 96);
  });
}

TEST(ExtCollectives, LocalityAllgatherFasterThanRingAtScaleSmallBlocks) {
  // Shape check in virtual time: on a many-node machine with small blocks
  // the locality-aware allgather needs fewer network latencies than the
  // flat ring.
  const topo::Machine machine = topo::generic_hier(8, 2, 1, 8);  // 8x16
  const model::NetParams net = model::omni_path();
  auto timed = [&](bool locality) {
    std::vector<double> end(machine.total_ranks(), 0.0);
    test::run_sim(
        machine,
        [&](Comm& c) -> Task<void> {
          const std::size_t block = 8;
          LocalityComms lc = rt::build_locality_comms(c, machine, 16, false);
          Buffer send = c.alloc_buffer(block);
          Buffer recv = c.alloc_buffer(block * c.size());
          co_await rt::barrier(c);
          if (locality) {
            co_await coll::allgather_locality_aware(lc, send.view(),
                                                    recv.view());
          } else {
            co_await coll::allgather_ring(c, send.view(), recv.view());
          }
          end[c.rank()] = c.now();
        },
        net, /*carry_data=*/false);
    return *std::max_element(end.begin(), end.end());
  };
  EXPECT_LT(timed(true), timed(false));
}

}  // namespace
}  // namespace mca2a
