/// Concurrency stress and ordering-property tests for the many-core smp
/// fast path: the lock-free SPSC ring mailboxes (against an in-test
/// matching oracle and the mutex baseline), wildcard floods, ring-full
/// overflow, concurrent collectives on overlapping sub-communicators, and
/// cross-thread hammering of the sharded plan cache and profiler.
///
/// The MailboxOrder oracle works because ring-mode drain order is
/// deterministic once sends are quiesced (mailbox.cpp): overflow is folded
/// into the per-lane reorder stashes first, then lanes are pumped in
/// source order, each in strict per-pair sequence order — so the arrival
/// order entering matching is (source-major, send-index-minor), and MPI
/// first-eligible matching over that order is fully predictable. The tests
/// quiesce with a std::barrier between the send and receive phases and pin
/// the predicted match order for every seeded script, on the default ring
/// and on deliberately tiny rings that force the overflow and heap-payload
/// paths. Mutex-mode arrival order is send-interleaving order
/// (nondeterministic across sources), so for that transport the same
/// floods assert completeness and per-source FIFO only.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstddef>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "autotune/profiler.hpp"
#include "core/alltoall.hpp"
#include "plan/plan.hpp"
#include "plan/sharded_cache.hpp"
#include "runtime/collectives.hpp"
#include "smp/mailbox.hpp"
#include "smp/smp_runtime.hpp"
#include "test_util.hpp"

namespace mca2a {
namespace {

using rt::Buffer;
using rt::Comm;
using rt::Task;

// --- seeded ordering oracle (satellite: isend/irecv property test) ----------

struct ScriptMsg {
  int src = 0;
  int idx = 0;  ///< per-source send index (payload word 1)
  int tag = 0;
};

struct ScriptRecv {
  int src = 0;  ///< rank or rt::kAnySource
  int tag = 0;  ///< tag or rt::kAnyTag
};

struct Script {
  std::vector<std::vector<ScriptMsg>> sends;  ///< indexed by source rank
  std::vector<ScriptRecv> recvs;
  std::vector<ScriptMsg> expect;  ///< oracle-predicted match order
};

bool eligible(const ScriptRecv& r, const ScriptMsg& m) {
  return (r.src == rt::kAnySource || r.src == m.src) &&
         (r.tag == rt::kAnyTag || r.tag == m.tag);
}

/// Build a deterministic script: ranks 1..ranks-1 each send
/// `msgs_per_sender` tagged messages to rank 0, then rank 0 posts a
/// random mix of specific/wildcard receives, each guaranteed completable.
/// The oracle replays first-eligible matching over the quiesced arrival
/// order (source-major, index-minor) to predict every match.
Script make_script(int ranks, int msgs_per_sender, unsigned seed) {
  std::mt19937 rng(seed);
  Script s;
  s.sends.resize(static_cast<std::size_t>(ranks));
  std::vector<ScriptMsg> rem;  // quiesced arrival order
  for (int src = 1; src < ranks; ++src) {
    for (int i = 0; i < msgs_per_sender; ++i) {
      const ScriptMsg m{src, i, static_cast<int>(rng() % 4)};
      s.sends[static_cast<std::size_t>(src)].push_back(m);
      rem.push_back(m);
    }
  }
  while (!rem.empty()) {
    // Aim the spec at a random remaining message so every receive matches
    // at least one candidate; the oracle decides which actually wins.
    const ScriptMsg& aim = rem[rng() % rem.size()];
    ScriptRecv r;
    switch (rng() % 4) {
      case 0:
        r = {rt::kAnySource, rt::kAnyTag};
        break;
      case 1:
        r = {aim.src, rt::kAnyTag};
        break;
      case 2:
        r = {rt::kAnySource, aim.tag};
        break;
      default:
        r = {aim.src, aim.tag};
        break;
    }
    const auto it = std::find_if(
        rem.begin(), rem.end(),
        [&](const ScriptMsg& m) { return eligible(r, m); });
    s.recvs.push_back(r);
    s.expect.push_back(*it);
    rem.erase(it);
  }
  return s;
}

/// Run one scripted flood under `cfg` and assert the ring transport
/// reproduces the oracle's match order exactly.
void run_oracle_case(int ranks, const smp::MailboxConfig& cfg, unsigned seed) {
  const Script script = make_script(ranks, 30, seed);
  std::barrier<> quiesce(ranks);
  smp::run_threads(ranks, cfg, [&](Comm& c) -> Task<void> {
    if (c.rank() != 0) {
      Buffer b = Buffer::real(8);
      for (const ScriptMsg& m :
           script.sends[static_cast<std::size_t>(c.rank())]) {
        b.typed<int>()[0] = m.src;
        b.typed<int>()[1] = m.idx;
        co_await c.send(b.view(), 0, m.tag);
      }
      quiesce.arrive_and_wait();
    } else {
      quiesce.arrive_and_wait();  // all sends happened-before this point
      Buffer b = Buffer::real(8);
      for (std::size_t i = 0; i < script.recvs.size(); ++i) {
        co_await c.recv(b.view(), script.recvs[i].src, script.recvs[i].tag);
        // EXPECT (not ASSERT): gtest's fatal form returns, which a
        // coroutine forbids.
        EXPECT_EQ(b.typed<int>()[0], script.expect[i].src)
            << "seed " << seed << " ranks " << ranks << " recv " << i;
        EXPECT_EQ(b.typed<int>()[1], script.expect[i].idx)
            << "seed " << seed << " ranks " << ranks << " recv " << i;
        if (testing::Test::HasFailure()) {
          co_return;  // one divergence implies a flood of them
        }
      }
    }
  });
}

TEST(MailboxOrder, OracleMatchOrderDefaultRing) {
  const smp::MailboxConfig cfg;  // ring, default sizing
  for (const int ranks : {2, 4, 8, 16}) {
    for (const unsigned seed : {1u, 2u, 3u}) {
      run_oracle_case(ranks, cfg, seed);
    }
  }
}

TEST(MailboxOrder, OracleMatchOrderTinyRingOverflow) {
  // Two-slot lanes: most of the flood takes the overflow path, and the
  // consumer must merge ring + overflow back into per-pair order.
  smp::MailboxConfig cfg;
  cfg.ring_slots = 2;
  cfg.ring_inline = 8;
  for (const int ranks : {4, 8}) {
    for (const unsigned seed : {1u, 2u, 3u}) {
      run_oracle_case(ranks, cfg, seed);
    }
  }
}

TEST(MailboxOrder, OracleMatchOrderHeapPayloads) {
  // Zero inline bytes: every payload travels as an owned heap block.
  smp::MailboxConfig cfg;
  cfg.ring_slots = 4;
  cfg.ring_inline = 0;
  for (const int ranks : {4, 8}) {
    for (const unsigned seed : {1u, 2u, 3u}) {
      run_oracle_case(ranks, cfg, seed);
    }
  }
}

TEST(MailboxOrder, RingFullNeverBlocksAndKeepsOrder) {
  // Both peers flood each other through two-slot lanes before either
  // receives: eager semantics demand the senders never block (the
  // overflow list is unbounded), and content/order must survive the
  // ring -> overflow -> stash merge. Message sizes straddle the inline
  // threshold so inline, heap and overflow payloads interleave.
  constexpr int kN = 200;
  smp::MailboxConfig cfg;
  cfg.ring_slots = 2;
  cfg.ring_inline = 8;
  const auto len_of = [](int i) {
    return static_cast<std::size_t>(1 + (i * 37) % 300);
  };
  smp::run_threads(2, cfg, [&](Comm& c) -> Task<void> {
    const int peer = 1 - c.rank();
    Buffer out = Buffer::real(512);
    for (int i = 0; i < kN; ++i) {
      const std::size_t len = len_of(i);
      for (std::size_t k = 0; k < len; ++k) {
        out.data()[k] = test::pattern(c.rank(), i, k);
      }
      co_await c.send(out.view(0, len), peer, 0);
    }
    Buffer in = Buffer::real(512);
    for (int i = 0; i < kN; ++i) {
      const std::size_t len = len_of(i);
      co_await c.recv(in.view(0, len), peer, 0);
      for (std::size_t k = 0; k < len; ++k) {
        EXPECT_EQ(in.data()[k], test::pattern(peer, i, k))
            << "msg " << i << " byte " << k;
        if (testing::Test::HasFailure()) {
          co_return;
        }
      }
    }
  });
}

// --- concurrent floods (no quiesce: live sleep/wake and drain paths) --------

/// Ranks 1..p-1 flood rank 0 with tagged messages while rank 0 receives
/// with full wildcards concurrently. Asserts completeness and per-source
/// FIFO — the guarantees both transports share under live interleaving.
void run_wildcard_flood(const smp::MailboxConfig& cfg) {
  constexpr int kRanks = 8;
  constexpr int kMsgs = 50;
  smp::run_threads(kRanks, cfg, [&](Comm& c) -> Task<void> {
    if (c.rank() != 0) {
      std::mt19937 rng(static_cast<unsigned>(c.rank()) * 7919u);
      Buffer b = Buffer::real(8);
      for (int i = 0; i < kMsgs; ++i) {
        b.typed<int>()[0] = c.rank();
        b.typed<int>()[1] = i;
        co_await c.send(b.view(), 0, static_cast<int>(rng() % 5));
      }
    } else {
      std::vector<int> last(kRanks, -1);
      std::vector<int> count(kRanks, 0);
      Buffer b = Buffer::real(8);
      for (int i = 0; i < (kRanks - 1) * kMsgs; ++i) {
        co_await c.recv(b.view(), rt::kAnySource, rt::kAnyTag);
        const int src = b.typed<int>()[0];
        const int idx = b.typed<int>()[1];
        EXPECT_GE(src, 1);
        EXPECT_LT(src, kRanks);
        if (src < 1 || src >= kRanks) {
          co_return;
        }
        EXPECT_GT(idx, last[static_cast<std::size_t>(src)])
            << "per-source FIFO violated for source " << src;
        last[static_cast<std::size_t>(src)] = idx;
        ++count[static_cast<std::size_t>(src)];
      }
      for (int src = 1; src < kRanks; ++src) {
        EXPECT_EQ(count[static_cast<std::size_t>(src)], kMsgs);
      }
    }
  });
}

TEST(ConcurrencyStress, WildcardFloodRing) {
  run_wildcard_flood(smp::MailboxConfig{});
}

TEST(ConcurrencyStress, WildcardFloodRingNoSpin) {
  // spin = 0 parks the receiver on the doorbell immediately: every message
  // delivery exercises the Dekker sleep/wake pairing.
  smp::MailboxConfig cfg;
  cfg.spin = 0;
  run_wildcard_flood(cfg);
}

TEST(ConcurrencyStress, WildcardFloodMutexBaseline) {
  smp::MailboxConfig cfg;
  cfg.kind = smp::MailboxKind::kMutex;
  run_wildcard_flood(cfg);
}

TEST(ConcurrencyStress, OverlappingSubcommCollectives) {
  // Every rank belongs to two overlapping sub-communicators (parity and
  // half) plus the world; repeated verified exchanges run on all three,
  // so lanes of different communicators interleave on every thread pair.
  constexpr int kRanks = 8;
  constexpr std::size_t kBlock = 32;
  constexpr int kRounds = 5;
  smp::run_threads(kRanks, [&](Comm& c) -> Task<void> {
    const int me = c.rank();
    std::vector<int> parity;
    for (int r = me % 2; r < kRanks; r += 2) {
      parity.push_back(r);
    }
    std::vector<int> half;
    for (int r = (me / 4) * 4; r < (me / 4) * 4 + 4; ++r) {
      half.push_back(r);
    }
    auto sub_parity = c.create_subcomm(parity);
    auto sub_half = c.create_subcomm(half);
    const auto exchange = [&](Comm& comm) -> Task<void> {
      const int p = comm.size();
      Buffer s = Buffer::real(kBlock * static_cast<std::size_t>(p));
      Buffer r = Buffer::real(kBlock * static_cast<std::size_t>(p));
      test::fill_send(s, comm.rank(), p, kBlock);
      co_await coll::alltoall_nonblocking(comm, s.view(), r.view(), kBlock);
      EXPECT_TRUE(test::check_recv(r, comm.rank(), p, kBlock));
    };
    for (int round = 0; round < kRounds; ++round) {
      co_await exchange(c);
      co_await exchange(*sub_parity);
      co_await exchange(*sub_half);
    }
  });
}

// --- sharded hot-path state under cross-thread hammering --------------------

TEST(ConcurrencyStress, SharedShardedCacheHammer) {
  // Eight rank threads share one ShardedPlanCache sized to thrash: five
  // rotating plan keys per thread against four-entry shards forces
  // evictions under concurrent insert, while the block-16 plan executes a
  // verified exchange every round.
  constexpr int kRanks = 8;
  constexpr int kRounds = 6;
  const topo::Machine machine = topo::generic(1, kRanks);
  const std::vector<std::size_t> blocks{4, 8, 16, 32, 64};
  plan::ShardedPlanCache cache(16, 4);
  ASSERT_EQ(cache.shard_count(), 4u);
  std::atomic<std::uint64_t> gets{0};
  smp::run_threads(kRanks, [&](Comm& world) -> Task<void> {
    plan::PlanOptions popts;
    popts.algo = coll::Algo::kPairwiseDirect;  // plan construction is local
    const int p = world.size();
    Buffer send = world.alloc_buffer(static_cast<std::size_t>(p) * 16);
    Buffer recv = world.alloc_buffer(static_cast<std::size_t>(p) * 16);
    test::fill_send(send, world.rank(), p, 16);
    for (int round = 0; round < kRounds; ++round) {
      for (const std::size_t block : blocks) {
        auto plan = cache.get_or_create(world, machine, model::test_params(),
                                        block, popts);
        gets.fetch_add(1, std::memory_order_relaxed);
        if (block == 16) {
          co_await plan->execute(rt::ConstView(send.view()), recv.view());
          EXPECT_TRUE(test::check_recv(recv, world.rank(), p, 16));
        }
      }
    }
    co_await rt::barrier(world);
    // Entries key on this endpoint's address; drop them before the
    // communicator dies (the cache outlives run_threads).
    cache.erase_comm(world);
  });
  const plan::PlanCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, gets.load());
  EXPECT_EQ(st.constructions, st.misses);
  EXPECT_GT(st.evictions, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ConcurrencyStress, ProfilerShardMergeBitIdentical) {
  // Eight writer threads with disjoint keys against a shared 8-shard
  // profiler, vs a serial profiler fed the identical per-key sequences:
  // the merged snapshot serialization must match byte for byte (Chan
  // merging is exact, and the fixed shard fold order plus sticky
  // thread->shard pinning make it reproducible).
  constexpr int kThreads = 8;
  constexpr int kSamples = 200;
  const topo::Machine machine = topo::generic(2, 4);
  const auto key_for = [&](int t) {
    return autotune::make_profile_key(machine, coll::OpKind::kAlltoall,
                                      std::size_t{64} << t, /*algo=*/1,
                                      /*group_size=*/4, "test");
  };
  const auto value = [](int t, int i) {
    const unsigned mix = static_cast<unsigned>(t) * 1315423911u +
                         static_cast<unsigned>(i) * 2654435761u;
    return 1e-6 * static_cast<double>(mix % 100000 + 1);
  };
  autotune::ExecutionProfiler shared(kThreads);
  {
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        const autotune::ProfileKey k = key_for(t);
        for (int i = 0; i < kSamples; ++i) {
          shared.record(k, value(t, i));
        }
      });
    }
    for (std::thread& w : writers) {
      w.join();
    }
  }
  autotune::ExecutionProfiler serial(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    const autotune::ProfileKey k = key_for(t);
    for (int i = 0; i < kSamples; ++i) {
      serial.record(k, value(t, i));
    }
  }
  std::ostringstream a;
  std::ostringstream b;
  autotune::write_profile_section(a, shared);
  autotune::write_profile_section(b, serial);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_FALSE(a.str().empty());
  // Re-serializing the same quiesced profiler must reproduce the bytes.
  std::ostringstream again;
  autotune::write_profile_section(again, shared);
  EXPECT_EQ(a.str(), again.str());
}

TEST(ConcurrencyStress, ProfilerSameKeyMultiWriterExact) {
  // All threads hammer ONE key: per-key stats then span shards, and the
  // exact (order-independent) fields must still come out right while the
  // order-dependent ones stay reproducible across snapshots.
  constexpr int kThreads = 8;
  constexpr int kSamples = 100;
  const topo::Machine machine = topo::generic(2, 4);
  const autotune::ProfileKey key = autotune::make_profile_key(
      machine, coll::OpKind::kAlltoallv, 4096, /*algo=*/0, /*group_size=*/1,
      "test");
  autotune::ExecutionProfiler prof(kThreads);
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kSamples; ++i) {
        prof.record(key, 1.0 + t + 1e-3 * i);
      }
    });
  }
  for (std::thread& w : writers) {
    w.join();
  }
  const auto stats = prof.lookup(key);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->n, static_cast<std::uint64_t>(kThreads) * kSamples);
  EXPECT_EQ(stats->min, 1.0);  // thread 0's first sample, exact
  EXPECT_EQ(prof.samples(key), stats->n);
  EXPECT_EQ(prof.size(), 1u);
  std::ostringstream a;
  std::ostringstream b;
  autotune::write_profile_section(a, prof);
  autotune::write_profile_section(b, prof);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace mca2a
