/// Locality-aware alltoallv (vector Algorithms 3 and 5): bit-for-bit
/// result equivalence with the direct pairwise exchange under random
/// skewed counts on both backends, through direct calls and through
/// CollectivePlan::start().wait(); degenerate vector shapes (zero-count
/// peers, one rank sending everything, all-zero exchanges, counts that
/// overflow a leader block); the skew-aware tuner and its TuningTable /
/// PlanCache integration.

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <vector>

#include "coll_ext/alltoallv.hpp"
#include "coll_ext/ext_tuner.hpp"
#include "harness/sweep.hpp"
#include "model/presets.hpp"
#include "plan/cache.hpp"
#include "plan/plan.hpp"
#include "plan/tuning_table.hpp"
#include "test_util.hpp"

namespace mca2a {
namespace {

using rt::Buffer;
using rt::Comm;
using rt::Task;

/// Deterministic skewed count matrix: a few zero pairs, one strongly hot
/// pair per row (17x the base), pseudo-random bases.
std::size_t count_for(int s, int d, int p, std::uint32_t seed) {
  const std::uint32_t h =
      (static_cast<std::uint32_t>(s) * 2654435761u) ^
      (static_cast<std::uint32_t>(d) * 40503u) ^ (seed * 97u);
  const std::uint32_t c = h % 41;
  if (c < 6) {
    return 0;  // zero-count peers
  }
  if ((s + d) % p == 1) {
    return static_cast<std::size_t>(c) * 17;  // hot pairs
  }
  return static_cast<std::size_t>(c);
}

std::byte vbyte(int s, int d, std::size_t k) {
  return static_cast<std::byte>((s * 151 + d * 29 + static_cast<int>(k % 83)) &
                                0xFF);
}

enum class Backend { kSim, kSmp };

struct LCase {
  Backend backend;
  coll::AlltoallvAlgo algo;
  int nodes;
  int ppn;
  int group;
  std::uint32_t seed;
  bool via_plan;
};

std::string lcase_name(const ::testing::TestParamInfo<LCase>& info) {
  const LCase& c = info.param;
  return std::string(c.backend == Backend::kSim ? "sim" : "smp") + "_" +
         (c.algo == coll::AlltoallvAlgo::kHierarchical ? "hier" : "mlna") +
         "_n" + std::to_string(c.nodes) + "x" + std::to_string(c.ppn) + "_g" +
         std::to_string(c.group) + "_seed" + std::to_string(c.seed) +
         (c.via_plan ? "_plan" : "_direct");
}

/// Run `body` on the case's backend with the case's machine shape.
void run_case(const LCase& c,
              const std::function<Task<void>(Comm&)>& body) {
  const topo::Machine machine = topo::generic(c.nodes, c.ppn);
  if (c.backend == Backend::kSim) {
    test::run_sim(machine, body);
  } else {
    test::run_smp(machine.total_ranks(), body);
  }
}

/// The shared exchange body: build skewed counts, run the case's
/// algorithm (direct or through a started plan), check every byte.
Task<void> exchange_body(const LCase& c, const topo::Machine& machine,
                         Comm& world) {
  const int p = world.size();
  const int me = world.rank();
  std::vector<std::size_t> scounts(p), rcounts(p);
  for (int r = 0; r < p; ++r) {
    scounts[r] = count_for(me, r, p, c.seed);
    rcounts[r] = count_for(r, me, p, c.seed);
  }
  const auto sdispls = coll::displs_from_counts(scounts);
  const auto rdispls = coll::displs_from_counts(rcounts);
  const std::size_t stotal = sdispls.back() + scounts.back();
  const std::size_t rtotal = rdispls.back() + rcounts.back();
  Buffer send = Buffer::real(stotal);
  Buffer recv = Buffer::real(rtotal);
  for (int d = 0; d < p; ++d) {
    for (std::size_t k = 0; k < scounts[d]; ++k) {
      send.data()[sdispls[d] + k] = vbyte(me, d, k);
    }
  }

  if (c.via_plan) {
    coll::AlltoallvDesc desc;
    desc.send_counts = scounts;
    desc.recv_counts = rcounts;
    desc.algo = c.algo;
    plan::PlanOptions popts;
    popts.group_size = c.group;
    auto pl = plan::make_plan(world, machine, model::test_params(), desc,
                              popts);
    // The nonblocking handle path, exactly as the acceptance criterion
    // asks: start(), then wait().
    plan::CollectiveHandle h =
        pl.start(rt::ConstView(send.view()), recv.view());
    co_await h.wait();
    EXPECT_TRUE(h.test());
  } else {
    rt::LocalityComms lc = rt::build_locality_comms(
        world, machine, c.group, coll::needs_leader_comms(c.algo));
    co_await coll::run_alltoallv(c.algo, world, &lc,
                                 rt::ConstView(send.view()), scounts, sdispls,
                                 recv.view(), rcounts, rdispls);
  }

  for (int s = 0; s < p; ++s) {
    for (std::size_t k = 0; k < rcounts[s]; ++k) {
      EXPECT_EQ(recv.data()[rdispls[s] + k], vbyte(s, me, k))
          << "rank " << me << ": from " << s << " byte " << k;
    }
  }
}

class AlltoallvLocalityGrid : public ::testing::TestWithParam<LCase> {};

TEST_P(AlltoallvLocalityGrid, RoutesSkewedCounts) {
  const LCase c = GetParam();
  const topo::Machine machine = topo::generic(c.nodes, c.ppn);
  run_case(c, [&](Comm& world) -> Task<void> {
    co_await exchange_body(c, machine, world);
  });
}

std::vector<LCase> lcases() {
  std::vector<LCase> cases;
  struct Shape {
    int nodes, ppn, group;
  };
  for (Backend b : {Backend::kSim, Backend::kSmp}) {
    for (coll::AlltoallvAlgo a : {coll::AlltoallvAlgo::kHierarchical,
                                  coll::AlltoallvAlgo::kMultileaderNodeAware}) {
      for (Shape sh : {Shape{2, 4, 4}, Shape{2, 4, 2}, Shape{3, 4, 2}}) {
        for (std::uint32_t seed : {1u, 42u}) {
          for (bool via_plan : {false, true}) {
            cases.push_back(LCase{b, a, sh.nodes, sh.ppn, sh.group, seed,
                                  via_plan});
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Skewed, AlltoallvLocalityGrid,
                         ::testing::ValuesIn(lcases()), lcase_name);

// --- degenerate vector shapes ------------------------------------------------

struct DegenerateShape {
  const char* name;
  /// Bytes s sends d on a p-rank communicator.
  std::size_t (*count)(int s, int d, int p);
};

std::size_t shape_all_zero(int, int, int) { return 0; }
std::size_t shape_one_sender(int s, int d, int) {
  return s == 0 ? 64 + static_cast<std::size_t>(d) : 0;
}
std::size_t shape_zero_peers(int s, int d, int) {
  return (s + d) % 2 == 0 ? 0 : 13;
}
/// One pair dwarfs everything: the leader's aggregated block is dominated
/// by a single 32 KiB transfer (overflowing any "fair share" sizing).
std::size_t shape_leader_overflow(int s, int d, int) {
  if (s == 1 && d == 2) {
    return 32768;
  }
  return 3;
}

class AlltoallvDegenerate
    : public ::testing::TestWithParam<
          std::tuple<Backend, coll::AlltoallvAlgo, int>> {};

TEST_P(AlltoallvDegenerate, Routes) {
  const auto [backend, algo, shape_idx] = GetParam();
  static constexpr DegenerateShape kShapes[] = {
      {"all_zero", shape_all_zero},
      {"one_sender", shape_one_sender},
      {"zero_peers", shape_zero_peers},
      {"leader_overflow", shape_leader_overflow},
  };
  const DegenerateShape& shape = kShapes[shape_idx];
  const topo::Machine machine = topo::generic(2, 4);
  auto body = [&, algo](Comm& world) -> Task<void> {
    const int p = world.size();
    const int me = world.rank();
    std::vector<std::size_t> scounts(p), rcounts(p);
    for (int r = 0; r < p; ++r) {
      scounts[r] = shape.count(me, r, p);
      rcounts[r] = shape.count(r, me, p);
    }
    const auto sdispls = coll::displs_from_counts(scounts);
    const auto rdispls = coll::displs_from_counts(rcounts);
    Buffer send = Buffer::real(sdispls.back() + scounts.back());
    Buffer recv = Buffer::real(rdispls.back() + rcounts.back());
    for (int d = 0; d < p; ++d) {
      for (std::size_t k = 0; k < scounts[d]; ++k) {
        send.data()[sdispls[d] + k] = vbyte(me, d, k);
      }
    }
    rt::LocalityComms lc = rt::build_locality_comms(
        world, machine, /*group_size=*/2, coll::needs_leader_comms(algo));
    co_await coll::run_alltoallv(algo, world, &lc, rt::ConstView(send.view()),
                                 scounts, sdispls, recv.view(), rcounts,
                                 rdispls);
    for (int s = 0; s < p; ++s) {
      for (std::size_t k = 0; k < rcounts[s]; ++k) {
        EXPECT_EQ(recv.data()[rdispls[s] + k], vbyte(s, me, k))
            << shape.name << ": rank " << me << " from " << s << " byte " << k;
      }
    }
  };
  if (backend == Backend::kSim) {
    test::run_sim(machine, body);
  } else {
    test::run_smp(machine.total_ranks(), body);
  }
}

std::string degenerate_name(
    const ::testing::TestParamInfo<std::tuple<Backend, coll::AlltoallvAlgo, int>>&
        info) {
  static const char* kShapeNames[] = {"all_zero", "one_sender", "zero_peers",
                                      "leader_overflow"};
  const auto [backend, algo, shape] = info.param;
  return std::string(backend == Backend::kSim ? "sim" : "smp") + "_" +
         (algo == coll::AlltoallvAlgo::kHierarchical ? "hier" : "mlna") + "_" +
         kShapeNames[shape];
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AlltoallvDegenerate,
    ::testing::Combine(
        ::testing::Values(Backend::kSim, Backend::kSmp),
        ::testing::Values(coll::AlltoallvAlgo::kHierarchical,
                          coll::AlltoallvAlgo::kMultileaderNodeAware),
        ::testing::Range(0, 4)),
    degenerate_name);

// --- non-dense user layouts --------------------------------------------------

TEST(AlltoallvLocality, HandlesGappyDisplacements) {
  const topo::Machine machine = topo::generic(2, 4);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    const int p = world.size();
    const int me = world.rank();
    // Every block padded to a 32-byte slot: displacements are not the
    // prefix sums, so the leader funnel must stage.
    constexpr std::size_t kSlot = 32;
    std::vector<std::size_t> scounts(p), rcounts(p), sdispls(p), rdispls(p);
    for (int r = 0; r < p; ++r) {
      scounts[r] = count_for(me, r, p, 7u) % kSlot;
      rcounts[r] = count_for(r, me, p, 7u) % kSlot;
      sdispls[r] = static_cast<std::size_t>(r) * kSlot;
      rdispls[r] = static_cast<std::size_t>(r) * kSlot;
    }
    Buffer send = Buffer::real(p * kSlot);
    Buffer recv = Buffer::real(p * kSlot);
    for (int d = 0; d < p; ++d) {
      for (std::size_t k = 0; k < scounts[d]; ++k) {
        send.data()[sdispls[d] + k] = vbyte(me, d, k);
      }
    }
    rt::LocalityComms lc =
        rt::build_locality_comms(world, machine, /*group_size=*/2, true);
    co_await coll::alltoallv_hierarchical(lc, rt::ConstView(send.view()),
                                          scounts, sdispls, recv.view(),
                                          rcounts, rdispls);
    for (int s = 0; s < p; ++s) {
      for (std::size_t k = 0; k < rcounts[s]; ++k) {
        EXPECT_EQ(recv.data()[rdispls[s] + k], vbyte(s, me, k));
      }
    }
  });
}

// --- contract violations -----------------------------------------------------

TEST(AlltoallvLocality, RejectsVirtualPayload) {
  const topo::Machine machine = topo::generic(2, 4);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    const int p = world.size();
    std::vector<std::size_t> counts(p, 8);
    const auto displs = coll::displs_from_counts(counts);
    Buffer vsend = Buffer::virt(static_cast<std::size_t>(p) * 8);
    Buffer vrecv = Buffer::virt(static_cast<std::size_t>(p) * 8);
    rt::LocalityComms lc =
        rt::build_locality_comms(world, machine, machine.ppn(), true);
    EXPECT_THROW(rt::sync_wait(coll::alltoallv_hierarchical(
                     lc, vsend.view(), counts, displs, vrecv.view(), counts,
                     displs)),
                 std::invalid_argument);
    co_return;
  });
}

// --- the skew-aware tuner ----------------------------------------------------

coll::AlltoallvSkew skew_of(int p, std::size_t mean, double imb) {
  return bench::vector_skew(p, mean, imb, /*seed=*/1);
}

TEST(AlltoallvTuner, PairwisePredictionGrowsWithImbalance) {
  const topo::Machine machine = topo::dane(4);
  const model::NetParams net = model::omni_path();
  const int p = machine.total_ranks();
  double prev = 0.0;
  for (double imb : {1.0, 4.0, 16.0, 64.0}) {
    const double t = coll::predict_alltoallv_seconds(
        coll::AlltoallvAlgo::kPairwise, machine, net, skew_of(p, 256, imb),
        machine.ppn());
    EXPECT_GT(t, prev) << "imbalance " << imb;
    prev = t;
  }
}

TEST(AlltoallvTuner, HighImbalancePicksLocality) {
  const topo::Machine machine = topo::dane(4);
  const model::NetParams net = model::omni_path();
  const int p = machine.total_ranks();
  const auto skewed = coll::select_alltoallv_algorithm(
      machine, net, skew_of(p, 256, 64.0));
  EXPECT_TRUE(coll::needs_locality(skewed.algo))
      << "picked " << coll::alltoallv_algo_name(skewed.algo);
  EXPECT_GT(skewed.imbalance, 32.0);
  // At any imbalance the locality pick must beat pairwise's own estimate.
  const double pairwise = coll::predict_alltoallv_seconds(
      coll::AlltoallvAlgo::kPairwise, machine, net, skew_of(p, 256, 64.0),
      machine.ppn());
  EXPECT_LT(skewed.predicted_seconds, pairwise);
}

TEST(AlltoallvTuner, UniformExtremesMatchTheFixedSizeStory) {
  const topo::Machine machine = topo::dane(4);
  const model::NetParams net = model::omni_path();
  const int p = machine.total_ranks();
  // Uniform small blocks: locality aggregation wins, exactly like the
  // fixed-size tuner (the paper's headline result carries over).
  const auto small =
      coll::select_alltoallv_algorithm(machine, net, skew_of(p, 4, 1.0));
  EXPECT_NEAR(small.imbalance, 1.0, 1e-9);
  EXPECT_TRUE(coll::needs_locality(small.algo))
      << "picked " << coll::alltoallv_algo_name(small.algo);
  // Uniform large blocks: bandwidth-bound, the leader funnel only adds
  // copies — a direct exchange wins, like fig10's large-message end.
  const auto large =
      coll::select_alltoallv_algorithm(machine, net, skew_of(p, 4096, 1.0));
  EXPECT_FALSE(coll::needs_locality(large.algo))
      << "picked " << coll::alltoallv_algo_name(large.algo);
}

TEST(AlltoallvTuner, TableMemoizesAndRoundTrips) {
  const topo::Machine machine = topo::dane(4);
  const model::NetParams net = model::omni_path();
  const int p = machine.total_ranks();
  const auto skew = skew_of(p, 256, 64.0);

  plan::TuningTable table;
  const auto first = table.choose_alltoallv(machine, net, skew);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.hits(), 0u);
  const auto second = table.choose_alltoallv(machine, net, skew);
  EXPECT_EQ(table.hits(), 1u);
  EXPECT_EQ(first.algo, second.algo);
  EXPECT_EQ(first.group_size, second.group_size);

  std::stringstream ss;
  table.save(ss);
  EXPECT_NE(ss.str().find("a2av"), std::string::npos);
  plan::TuningTable loaded = plan::TuningTable::load(ss);
  const auto hit = loaded.lookup_alltoallv(machine, skew);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->algo, first.algo);
  EXPECT_EQ(hit->group_size, first.group_size);
  EXPECT_DOUBLE_EQ(hit->predicted_seconds, first.predicted_seconds);
}

// --- plan integration --------------------------------------------------------

TEST(AlltoallvPlan, CacheKeysOnCountSignature) {
  const topo::Machine machine = topo::generic(1, 4);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    const int p = world.size();
    plan::PlanCache cache(8);
    coll::AlltoallvDesc a;
    a.send_counts.assign(p, 16);
    a.recv_counts.assign(p, 16);
    a.algo = coll::AlltoallvAlgo::kPairwise;
    // Same totals, different distribution: must be a distinct plan.
    coll::AlltoallvDesc b = a;
    b.send_counts = {64, 0, 0, 0};
    b.recv_counts[0] = world.rank() == 0 ? 64 : 16;  // whatever, local desc
    auto p1 = cache.get_or_create(world, machine, model::test_params(), a);
    auto p2 = cache.get_or_create(world, machine, model::test_params(), b);
    auto p3 = cache.get_or_create(world, machine, model::test_params(), a);
    EXPECT_EQ(cache.stats(coll::OpKind::kAlltoallv).misses, 2u);
    EXPECT_EQ(cache.stats(coll::OpKind::kAlltoallv).hits, 1u);
    EXPECT_EQ(p1.get(), p3.get());
    EXPECT_NE(p1.get(), p2.get());
    co_return;
  });
}

TEST(AlltoallvPlan, WarmExecutionsAllocateNothing) {
  const topo::Machine machine = topo::generic(2, 4);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    const int p = world.size();
    const int me = world.rank();
    std::vector<std::size_t> scounts(p), rcounts(p);
    for (int r = 0; r < p; ++r) {
      scounts[r] = count_for(me, r, p, 3u);
      rcounts[r] = count_for(r, me, p, 3u);
    }
    coll::AlltoallvDesc desc;
    desc.send_counts = scounts;
    desc.recv_counts = rcounts;
    desc.algo = coll::AlltoallvAlgo::kMultileaderNodeAware;
    plan::PlanOptions popts;
    popts.group_size = 2;
    auto pl =
        plan::make_plan(world, machine, model::test_params(), desc, popts);
    Buffer send = Buffer::real(desc.send_total());
    Buffer recv = Buffer::real(desc.recv_total());
    co_await pl.execute(rt::ConstView(send.view()), recv.view());
    const std::uint64_t warm = pl.scratch().allocations();
    co_await pl.execute(rt::ConstView(send.view()), recv.view());
    co_await pl.execute(rt::ConstView(send.view()), recv.view());
    EXPECT_EQ(pl.scratch().allocations(), warm)
        << "rank " << me << " allocated after warmup";
    EXPECT_GT(pl.scratch().reuses(), 0u);
    co_return;
  });
}

TEST(AlltoallvPlan, TunedPlanMatchesPairwiseResults) {
  // The tuner-chosen locality plan must route bytes identically to the
  // direct pairwise exchange on the same counts. dane(2) + Omni-Path is a
  // shape where the skew-aware tuner picks a locality algorithm.
  const topo::Machine machine = topo::dane(2);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    const int p = world.size();
    const int me = world.rank();
    std::vector<std::size_t> scounts(p), rcounts(p);
    for (int r = 0; r < p; ++r) {
      scounts[r] = count_for(me, r, p, 11u) % 64;
      rcounts[r] = count_for(r, me, p, 11u) % 64;
    }
    const auto sdispls = coll::displs_from_counts(scounts);
    const auto rdispls = coll::displs_from_counts(rcounts);
    Buffer send = Buffer::real(sdispls.back() + scounts.back());
    Buffer recv_plan = Buffer::real(rdispls.back() + rcounts.back());
    Buffer recv_pw = Buffer::real(rdispls.back() + rcounts.back());
    for (int d = 0; d < p; ++d) {
      for (std::size_t k = 0; k < scounts[d]; ++k) {
        send.data()[sdispls[d] + k] = vbyte(me, d, k);
      }
    }
    coll::AlltoallvDesc desc;
    desc.send_counts = scounts;
    desc.recv_counts = rcounts;
    // A strongly skewed collective signature (identical on every rank).
    desc.skew = coll::AlltoallvSkew{
        static_cast<std::size_t>(p) * p * 64, 64 * 16};
    auto pl = plan::make_plan(world, machine, model::omni_path(), desc);
    EXPECT_TRUE(coll::needs_locality(pl.alltoallv_algo()))
        << coll::alltoallv_algo_name(pl.alltoallv_algo());
    co_await pl.execute(rt::ConstView(send.view()), recv_plan.view());
    co_await coll::alltoallv_pairwise(world, rt::ConstView(send.view()),
                                      scounts, sdispls, recv_pw.view(),
                                      rcounts, rdispls);
    for (std::size_t k = 0; k < recv_pw.size(); ++k) {
      EXPECT_EQ(recv_plan.data()[k], recv_pw.data()[k])
          << "rank " << me << " byte " << k;
    }
    co_return;
  });
}

}  // namespace
}  // namespace mca2a
