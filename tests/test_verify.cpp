/// Static plan/schedule verifier (plan/verify.hpp): the abstract VerifyOp
/// surface on constructed — including deliberately broken — batches, the
/// pre-start plan checks, and the automatic wiring into Schedule::run()
/// through the forced-stream test hook (a real tag-conflicting Schedule
/// must be rejected before anything starts).

#include <gtest/gtest.h>

#include <vector>

#include "coll_ext/op_desc.hpp"
#include "core/alltoall.hpp"
#include "model/presets.hpp"
#include "plan/plan.hpp"
#include "plan/schedule.hpp"
#include "plan/verify.hpp"
#include "runtime/buffer.hpp"
#include "runtime/tags.hpp"
#include "smp/smp_runtime.hpp"
#include "test_util.hpp"
#include "topo/presets.hpp"

namespace mca2a {
namespace {

using rt::Buffer;
using rt::Comm;
using rt::Task;

plan::CollectivePlan make_plan_for(Comm& world, const topo::Machine& machine,
                                   std::size_t block) {
  coll::AlltoallDesc desc;
  desc.block = block;
  desc.algo = coll::Algo::kPairwiseDirect;
  return plan::make_plan(world, machine, model::test_params(), desc);
}

/// Distinct nonzero pointers to stand in for comm/plan identities; the
/// verifier only compares them, never dereferences.
int token_a, token_b;
const rt::Comm* comm_token(int& t) {
  return reinterpret_cast<const rt::Comm*>(&t);
}

// ---------------------------------------------------------------------------
// VerifyOp surface: constructed batches
// ---------------------------------------------------------------------------

TEST(PlanVerify, OrderedOrStreamDisjointBatchesPass) {
  // Two concurrent ops on one comm in different streams + a dependent op
  // reusing a stream: ordered with both, so no conflict.
  std::vector<plan::VerifyOp> ops(3);
  ops[0] = {comm_token(token_a), 1, &token_a, {}};
  ops[1] = {comm_token(token_a), 2, &token_b, {}};
  ops[2] = {comm_token(token_a), 1, &token_b, {0, 1}};
  const plan::VerifyReport rep = plan::verify(ops);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(PlanVerify, ConcurrentSameStreamSameCommRejected) {
  std::vector<plan::VerifyOp> ops(2);
  ops[0] = {comm_token(token_a), 3, nullptr, {}};
  ops[1] = {comm_token(token_a), 3, nullptr, {}};
  const plan::VerifyReport rep = plan::verify(ops);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("cross-match"), std::string::npos)
      << rep.to_string();
}

TEST(PlanVerify, SameStreamOnDifferentCommsIsFine) {
  std::vector<plan::VerifyOp> ops(2);
  ops[0] = {comm_token(token_a), 3, nullptr, {}};
  ops[1] = {comm_token(token_b), 3, nullptr, {}};
  EXPECT_TRUE(plan::verify(ops).ok());
}

TEST(PlanVerify, OrderedSameStreamIsFine) {
  std::vector<plan::VerifyOp> ops(2);
  ops[0] = {comm_token(token_a), 3, nullptr, {}};
  ops[1] = {comm_token(token_a), 3, nullptr, {0}};
  EXPECT_TRUE(plan::verify(ops).ok());
}

TEST(PlanVerify, TransitiveOrderingCounts) {
  // 0 -> 1 -> 2: ops 0 and 2 share a stream but are ordered through 1.
  std::vector<plan::VerifyOp> ops(3);
  ops[0] = {comm_token(token_a), 1, nullptr, {}};
  ops[1] = {comm_token(token_a), 2, nullptr, {0}};
  ops[2] = {comm_token(token_a), 1, nullptr, {1}};
  EXPECT_TRUE(plan::verify(ops).ok());
}

TEST(PlanVerify, HappensBeforeCycleRejectedAsDeadlock) {
  std::vector<plan::VerifyOp> ops(2);
  ops[0] = {comm_token(token_a), 1, nullptr, {1}};
  ops[1] = {comm_token(token_a), 2, nullptr, {0}};
  const plan::VerifyReport rep = plan::verify(ops);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("deadlock"), std::string::npos);
}

TEST(PlanVerify, UnorderedOpsOnOnePlanRejected) {
  std::vector<plan::VerifyOp> ops(2);
  ops[0] = {comm_token(token_a), 1, &token_a, {}};
  ops[1] = {comm_token(token_a), 2, &token_a, {}};
  const plan::VerifyReport rep = plan::verify(ops);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("same plan"), std::string::npos);
}

TEST(PlanVerify, EdgeAndStreamSanity) {
  {
    std::vector<plan::VerifyOp> ops(1);
    ops[0] = {comm_token(token_a), 1, nullptr, {7}};
    EXPECT_FALSE(plan::verify(ops).ok());  // dep out of range
  }
  {
    std::vector<plan::VerifyOp> ops(1);
    ops[0] = {comm_token(token_a), 1, nullptr, {0}};
    EXPECT_FALSE(plan::verify(ops).ok());  // self-dependency
  }
  {
    std::vector<plan::VerifyOp> ops(1);
    ops[0] = {comm_token(token_a), rt::tags::kNumStreams, nullptr, {}};
    EXPECT_FALSE(plan::verify(ops).ok());  // stream out of range
  }
  EXPECT_TRUE(plan::verify(std::vector<plan::VerifyOp>{}).ok());
}

// ---------------------------------------------------------------------------
// Plan-level checks
// ---------------------------------------------------------------------------

TEST(PlanVerify, IdlePlanWithReturnedScratchPasses) {
  const topo::Machine machine = topo::generic(1, 2);
  test::run_smp(machine.total_ranks(), [&](Comm& world) -> Task<void> {
    plan::CollectivePlan p = make_plan_for(world, machine, 16);
    const plan::VerifyReport rep = plan::verify(p, 1);
    EXPECT_TRUE(rep.ok()) << rep.to_string();
    EXPECT_FALSE(plan::verify(p, rt::tags::kNumStreams).ok());
    EXPECT_FALSE(plan::verify(p, -2).ok());

    // A full execute leaves the arena fully returned: still verified.
    const int sz = world.size();
    Buffer s = Buffer::real(16 * static_cast<std::size_t>(sz));
    Buffer r = Buffer::real(16 * static_cast<std::size_t>(sz));
    test::fill_send(s, world.rank(), sz, 16);
    co_await p.execute(rt::ConstView(s.view()), r.view());
    EXPECT_TRUE(plan::verify(p).ok());
    EXPECT_EQ(p.scratch().outstanding_bytes(), 0u);
  });
}

// ---------------------------------------------------------------------------
// Automatic wiring: Schedule::run() rejects a tag-conflicting batch
// ---------------------------------------------------------------------------

TEST(PlanVerify, TagConflictingScheduleRejectedBeforeRunning) {
  const topo::Machine machine = topo::generic(1, 2);
  // Force the verifier on before the rank threads spawn (and restore only
  // after they join): flipping it inside the body would race the other
  // ranks' Schedule::run entry.
  plan::set_verify_enabled_for_test(1);
  test::run_smp(machine.total_ranks(), [&](Comm& world) -> Task<void> {
    const int p = world.size();
    const std::size_t block = 8;
    plan::CollectivePlan pa = make_plan_for(world, machine, block);
    plan::CollectivePlan pb = make_plan_for(world, machine, block);
    Buffer s = Buffer::real(block * static_cast<std::size_t>(p));
    Buffer r1 = Buffer::real(block * static_cast<std::size_t>(p));
    Buffer r2 = Buffer::real(block * static_cast<std::size_t>(p));
    test::fill_send(s, world.rank(), p, block);

    plan::Schedule bad;
    bad.add(pa, rt::ConstView(s.view()), r1.view());
    bad.add(pb, rt::ConstView(s.view()), r2.view());
    // Both independent ops forced into stream 1 on the same communicator:
    // their wire tags coincide, which must be rejected up front — before
    // either op starts (nothing is in flight to drain afterwards).
    bad.force_tag_streams_for_test({1, 1});
    try {
      co_await bad.run();
      ADD_FAILURE() << "tag-conflicting schedule was not rejected";
    } catch (const std::logic_error& e) {
      EXPECT_NE(std::string(e.what()).find("cross-match"), std::string::npos)
          << e.what();
    }
    EXPECT_EQ(pa.in_flight(), 0);
    EXPECT_EQ(pb.in_flight(), 0);
    co_return;
  });
  plan::set_verify_enabled_for_test(-1);
}

TEST(PlanVerify, VerifiedScheduleStillRunsWithVerifierForcedOn) {
  const topo::Machine machine = topo::generic(1, 2);
  plan::set_verify_enabled_for_test(1);
  test::run_smp(machine.total_ranks(), [&](Comm& world) -> Task<void> {
    const int p = world.size();
    const std::size_t block = 8;
    plan::CollectivePlan pa = make_plan_for(world, machine, block);
    plan::CollectivePlan pb = make_plan_for(world, machine, block);
    Buffer s = Buffer::real(block * static_cast<std::size_t>(p));
    Buffer r1 = Buffer::real(block * static_cast<std::size_t>(p));
    Buffer r2 = Buffer::real(block * static_cast<std::size_t>(p));
    test::fill_send(s, world.rank(), p, block);

    plan::Schedule sched;
    const int a = sched.add(pa, rt::ConstView(s.view()), r1.view());
    const int b = sched.add(pb, rt::ConstView(s.view()), r2.view());
    sched.add_dependency(a, b);
    co_await sched.run();
    EXPECT_TRUE(test::check_recv(r1, world.rank(), p, block));
    EXPECT_TRUE(test::check_recv(r2, world.rank(), p, block));
  });
  plan::set_verify_enabled_for_test(-1);
}

}  // namespace
}  // namespace mca2a
