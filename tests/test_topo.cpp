/// Unit tests for the machine topology model: rank arithmetic, locality
/// levels, group helpers, presets matching Table 1 of the paper.

#include <gtest/gtest.h>

#include "topo/machine.hpp"
#include "topo/presets.hpp"

namespace mca2a::topo {
namespace {

TEST(Machine, DanePresetMatchesTable1) {
  Machine m = dane(32);
  EXPECT_EQ(m.nodes(), 32);
  EXPECT_EQ(m.ppn(), 112);  // 2 sockets x 4 NUMA x 14 cores
  EXPECT_EQ(m.total_ranks(), 3584);
  EXPECT_EQ(m.desc().numa_per_node(), 8);
  EXPECT_EQ(m.desc().cores_per_socket(), 56);
}

TEST(Machine, AmberMatchesDaneArchitecture) {
  Machine a = amber(4);
  Machine d = dane(4);
  EXPECT_EQ(a.ppn(), d.ppn());
  EXPECT_EQ(a.desc().numa_per_node(), d.desc().numa_per_node());
}

TEST(Machine, TuolomnePresetMatchesTable1) {
  Machine m = tuolomne(32);
  EXPECT_EQ(m.ppn(), 96);  // 4 MI300A sockets x 24 cores
  EXPECT_EQ(m.total_ranks(), 3072);
}

TEST(Machine, InvalidDescThrows) {
  MachineDesc d;
  d.nodes = 0;
  EXPECT_THROW(Machine{d}, std::invalid_argument);
  d.nodes = 1;
  d.cores_per_numa = -1;
  EXPECT_THROW(Machine{d}, std::invalid_argument);
}

TEST(Machine, RankArithmetic) {
  Machine m = dane(2);  // ppn 112
  EXPECT_EQ(m.node_of(0), 0);
  EXPECT_EQ(m.node_of(111), 0);
  EXPECT_EQ(m.node_of(112), 1);
  EXPECT_EQ(m.local_rank(115), 3);
  EXPECT_EQ(m.world_rank(1, 3), 115);
  // Local 13 and 14 straddle the first NUMA boundary (14 cores per NUMA).
  EXPECT_EQ(m.numa_of(13), 0);
  EXPECT_EQ(m.numa_of(14), 1);
  // Local 55 and 56 straddle the socket boundary (56 cores per socket).
  EXPECT_EQ(m.socket_of(55), 0);
  EXPECT_EQ(m.socket_of(56), 1);
  // Node 1 global indices continue from node 0.
  EXPECT_EQ(m.numa_of(112), 8);
  EXPECT_EQ(m.socket_of(112), 2);
}

TEST(Machine, RankOutOfRangeThrows) {
  Machine m = generic(2, 4);
  EXPECT_THROW(m.node_of(8), std::out_of_range);
  EXPECT_THROW(m.node_of(-1), std::out_of_range);
  EXPECT_THROW(m.world_rank(2, 0), std::out_of_range);
  EXPECT_THROW(m.world_rank(0, 4), std::out_of_range);
}

TEST(Machine, LocalityLevels) {
  Machine m = dane(2);
  EXPECT_EQ(m.level(5, 5), Level::kSelf);
  EXPECT_EQ(m.level(0, 13), Level::kNuma);     // same NUMA domain
  EXPECT_EQ(m.level(0, 14), Level::kSocket);   // same socket, next NUMA
  EXPECT_EQ(m.level(0, 56), Level::kNode);     // other socket
  EXPECT_EQ(m.level(0, 112), Level::kNetwork); // other node
  // Symmetry.
  EXPECT_EQ(m.level(14, 0), Level::kSocket);
  EXPECT_EQ(m.level(112, 0), Level::kNetwork);
}

TEST(Machine, LevelNames) {
  EXPECT_STREQ(to_string(Level::kSelf), "self");
  EXPECT_STREQ(to_string(Level::kNetwork), "network");
}

TEST(Machine, GroupArithmetic) {
  Machine m = dane(2);  // ppn 112
  EXPECT_EQ(m.groups_per_node(4), 28);
  EXPECT_EQ(m.groups_per_node(8), 14);
  EXPECT_EQ(m.groups_per_node(16), 7);
  EXPECT_EQ(m.groups_per_node(112), 1);
  // Rank 115 = node 1, local 3 -> group 0, position 3 (g=4).
  EXPECT_EQ(m.group_of(115, 4), 0);
  EXPECT_EQ(m.group_local(115, 4), 3);
  EXPECT_FALSE(m.is_group_leader(115, 4));
  EXPECT_TRUE(m.is_group_leader(116, 4));  // local 4 = leader of group 1
}

TEST(Machine, GroupSizeMustDividePpn) {
  Machine m = dane(1);
  EXPECT_THROW(m.groups_per_node(3), std::invalid_argument);
  EXPECT_THROW(m.groups_per_node(0), std::invalid_argument);
  EXPECT_THROW(m.groups_per_node(224), std::invalid_argument);
}

TEST(Machine, PresetByName) {
  EXPECT_EQ(by_name("dane", 2).ppn(), 112);
  EXPECT_EQ(by_name("tuolomne", 2).ppn(), 96);
  EXPECT_THROW(by_name("frontier", 2), std::invalid_argument);
}

TEST(Machine, GenericHier) {
  Machine m = generic_hier(2, 2, 2, 4);  // 16 cores/node
  EXPECT_EQ(m.ppn(), 16);
  EXPECT_EQ(m.level(0, 3), Level::kNuma);
  EXPECT_EQ(m.level(0, 4), Level::kSocket);
  EXPECT_EQ(m.level(0, 8), Level::kNode);
  EXPECT_EQ(m.level(0, 16), Level::kNetwork);
}

}  // namespace
}  // namespace mca2a::topo
