/// Unit tests for the coroutine Task type: laziness, values, exceptions,
/// nesting depth (symmetric transfer), move semantics, live counters.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "runtime/task.hpp"

namespace mca2a::rt {
namespace {

Task<int> answer() { co_return 42; }

Task<void> nop() { co_return; }

Task<int> add(int a, int b) { co_return a + b; }

Task<int> chain(int depth) {
  if (depth == 0) {
    co_return 0;
  }
  const int below = co_await chain(depth - 1);
  co_return below + 1;
}

Task<void> throws() {
  throw std::runtime_error("boom");
  co_return;  // unreachable; makes this a coroutine
}

Task<int> rethrows() {
  co_await throws();
  co_return 1;
}

Task<void> set_flag(bool* flag) {
  // Parameters are copied into the coroutine frame, so passing a pointer is
  // safe even though the task runs later. (A capturing lambda would NOT be:
  // the closure is not part of the frame and must outlive the coroutine.)
  *flag = true;
  co_return;
}

TEST(Task, IsLazyUntilStarted) {
  bool ran = false;
  Task<void> t = set_flag(&ran);
  EXPECT_FALSE(ran);
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(t.done());
  sync_wait(std::move(t));
  EXPECT_TRUE(ran);
}

TEST(Task, SyncWaitReturnsValue) { EXPECT_EQ(sync_wait(answer()), 42); }

TEST(Task, VoidTaskCompletes) {
  auto t = nop();
  t.start();
  EXPECT_TRUE(t.done());
}

TEST(Task, AwaitNestedTask) {
  auto outer = []() -> Task<int> {
    const int a = co_await add(1, 2);
    const int b = co_await add(a, 10);
    co_return b;
  };
  EXPECT_EQ(sync_wait(outer()), 13);
}

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MCA2A_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MCA2A_SANITIZED 1
#endif
#endif

TEST(Task, DeepNestingDoesNotOverflowStack) {
#ifdef MCA2A_SANITIZED
  // Sanitizer instrumentation defeats the symmetric-transfer tail call
  // (every resume keeps a native frame), so the unbounded-depth guarantee
  // cannot hold under instrumentation — and TSan additionally aborts once
  // its stack depot hits 2^16 recorded frames. A shallower chain still
  // exercises the nesting machinery and catches gross per-frame stack
  // usage.
  EXPECT_EQ(sync_wait(chain(10000)), 10000);
#else
  // 100k frames would overflow a native stack without symmetric transfer.
  EXPECT_EQ(sync_wait(chain(100000)), 100000);
#endif
}

TEST(Task, ExceptionPropagatesThroughSyncWait) {
  EXPECT_THROW(sync_wait(throws()), std::runtime_error);
}

TEST(Task, ExceptionPropagatesThroughAwait) {
  EXPECT_THROW(sync_wait(rethrows()), std::runtime_error);
}

TEST(Task, MoveTransfersOwnership) {
  Task<int> a = answer();
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing move
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(sync_wait(std::move(b)), 42);
}

TEST(Task, LiveCounterDecrementsOnCompletion) {
  int live = 3;
  auto t = nop();
  t.start(&live);
  EXPECT_TRUE(t.done());
  EXPECT_EQ(live, 2);
}

TEST(Task, DestroyingUnstartedTaskIsSafe) {
  {
    auto t = answer();
    (void)t;
  }
  SUCCEED();
}

TEST(Task, ResultAfterStart) {
  auto t = add(20, 22);
  t.start();
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.result(), 42);
}

}  // namespace
}  // namespace mca2a::rt
