/// Unit tests for Buffer and views: real vs virtual behaviour, sub-views,
/// bounds checking, copy semantics.

#include <gtest/gtest.h>

#include "runtime/buffer.hpp"

namespace mca2a::rt {
namespace {

TEST(Buffer, RealIsZeroInitialized) {
  Buffer b = Buffer::real(16);
  EXPECT_EQ(b.size(), 16u);
  EXPECT_FALSE(b.is_virtual());
  ASSERT_NE(b.data(), nullptr);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(b.data()[i], std::byte{0});
  }
}

TEST(Buffer, VirtualHasNoStorage) {
  Buffer b = Buffer::virt(1 << 30);  // 1 GiB costs nothing
  EXPECT_EQ(b.size(), std::size_t{1} << 30);
  EXPECT_TRUE(b.is_virtual());
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_TRUE(b.view().is_virtual());
}

TEST(Buffer, EmptyBuffer) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_FALSE(b.view().is_virtual());  // zero-length is not "virtual"
}

TEST(Buffer, SubViewOffsets) {
  Buffer b = Buffer::real(32);
  b.data()[10] = std::byte{7};
  ConstView v = std::as_const(b).view(10, 4);
  EXPECT_EQ(v.len, 4u);
  EXPECT_EQ(v.ptr[0], std::byte{7});
}

TEST(Buffer, ViewOutOfRangeThrows) {
  Buffer b = Buffer::real(8);
  EXPECT_THROW(b.view(4, 8), std::out_of_range);
  EXPECT_THROW(b.view(9, 0), std::out_of_range);
  EXPECT_NO_THROW(b.view(8, 0));
}

TEST(Buffer, SubOfViewOutOfRangeThrows) {
  Buffer b = Buffer::real(8);
  MutView v = b.view();
  EXPECT_THROW(v.sub(6, 4), std::out_of_range);
  EXPECT_NO_THROW(v.sub(6, 2));
}

TEST(Buffer, VirtualSubViewStaysVirtual) {
  Buffer b = Buffer::virt(100);
  EXPECT_TRUE(b.view(10, 20).is_virtual());
}

TEST(Buffer, TypedAccess) {
  Buffer b = Buffer::real(4 * sizeof(int));
  auto ints = b.typed<int>();
  ASSERT_EQ(ints.size(), 4u);
  ints[2] = 99;
  EXPECT_EQ(b.typed<int>()[2], 99);
}

TEST(Buffer, TypedAccessOnVirtualThrows) {
  Buffer b = Buffer::virt(64);
  EXPECT_THROW(b.typed<int>(), std::logic_error);
}

TEST(CopyBytes, RealToReal) {
  Buffer a = Buffer::real(8);
  Buffer b = Buffer::real(8);
  for (int i = 0; i < 8; ++i) {
    a.data()[i] = static_cast<std::byte>(i);
  }
  EXPECT_EQ(copy_bytes(b.view(), a.view()), 8u);
  EXPECT_EQ(b.data()[5], std::byte{5});
}

TEST(CopyBytes, LengthMismatchThrows) {
  Buffer a = Buffer::real(8);
  Buffer b = Buffer::real(4);
  EXPECT_THROW(copy_bytes(b.view(), a.view()), std::invalid_argument);
}

TEST(CopyBytes, VirtualEndpointsAreNoOps) {
  Buffer real = Buffer::real(8);
  Buffer virt = Buffer::virt(8);
  EXPECT_EQ(copy_bytes(virt.view(), real.view()), 8u);
  EXPECT_EQ(copy_bytes(real.view(), virt.view()), 8u);  // leaves real as-is
}

TEST(CopyBytes, OverlappingRangesUseMemmoveSemantics) {
  Buffer a = Buffer::real(8);
  for (int i = 0; i < 8; ++i) {
    a.data()[i] = static_cast<std::byte>(i);
  }
  copy_bytes(a.view(0, 4), std::as_const(a).view(2, 4));
  EXPECT_EQ(a.data()[0], std::byte{2});
  EXPECT_EQ(a.data()[3], std::byte{5});
}

}  // namespace
}  // namespace mca2a::rt
