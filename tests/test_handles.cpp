/// Tests for the nonblocking collective API: CollectiveHandle
/// start()/test()/wait(), per-operation tag streams (two collectives in
/// flight on one communicator, or on overlapping locality
/// sub-communicators, without cross-matching), the in-flight move/start
/// guards on CollectivePlan, and the dependency-aware plan::Schedule —
/// on both backends, with virtual-time equivalence between the chained
/// schedule and the serialized execute() path.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "harness/sweep.hpp"
#include "plan/plan.hpp"
#include "plan/schedule.hpp"
#include "runtime/async.hpp"
#include "runtime/collectives.hpp"
#include "runtime/tags.hpp"
#include "test_util.hpp"

namespace mca2a {
namespace {

using rt::Buffer;
using rt::Comm;
using rt::Task;

plan::CollectivePlan make_a2a_plan(Comm& world, const topo::Machine& machine,
                                   coll::Algo algo, std::size_t block,
                                   int group_size = 0) {
  coll::AlltoallDesc desc;
  desc.block = block;
  desc.algo = algo;
  plan::PlanOptions popts;
  if (group_size > 0) {
    popts.group_size = group_size;
  }
  return plan::make_plan(world, machine, model::test_params(), desc, popts);
}

// ---------------------------------------------------------------------------
// Tag registry and streams
// ---------------------------------------------------------------------------

TEST(TagStreams, RegistryKeepsStreamsDisjoint) {
  // Any two (offset, stream) pairs map to distinct wire tags, and every
  // stream stays inside the reserved range.
  const int offsets[] = {rt::tags::kBarrier,           rt::tags::kGather,
                         rt::tags::kAlltoallPairwise,  rt::tags::kAlltoallBruck,
                         rt::tags::kExtAllgatherBruck, rt::tags::kExtAllreduce,
                         rt::tags::kExtAlltoallv};
  std::vector<int> seen;
  for (int stream : {0, 1, 2, rt::tags::kNumStreams - 1}) {
    for (int op : offsets) {
      const int tag = rt::tags::make(op, stream);
      EXPECT_GE(tag, rt::kInternalTagBase);
      seen.push_back(tag);
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
      << "two (op, stream) pairs share a wire tag";
}

TEST(TagStreams, CommDrawStartsAboveDirectStreamAndWraps) {
  test::run_smp(1, [](Comm& world) -> Task<void> {
    // Stream 0 belongs to direct collective calls and is never drawn.
    EXPECT_EQ(world.acquire_tag_stream(), 1);
    EXPECT_EQ(world.acquire_tag_stream(), 2);
    for (int i = 3; i < rt::tags::kNumStreams; ++i) {
      world.acquire_tag_stream();
    }
    EXPECT_EQ(world.acquire_tag_stream(), 1) << "draw must wrap past 0";
    co_return;
  });
}

// ---------------------------------------------------------------------------
// start / test / wait basics
// ---------------------------------------------------------------------------

TEST(CollectiveHandle, StartTestWaitOnBothBackends) {
  const topo::Machine machine = topo::generic(2, 4);
  const int p = machine.total_ranks();
  const std::size_t block = 32;
  const auto body = [&](bool is_sim) {
    return [&machine, p, block, is_sim](Comm& world) -> Task<void> {
      const int me = world.rank();
      plan::CollectivePlan plan =
          make_a2a_plan(world, machine, coll::Algo::kNonblockingDirect, block);
      Buffer send = Buffer::real(block * p);
      Buffer recv = Buffer::real(block * p);
      test::fill_send(send, me, p, block);

      plan::CollectiveHandle h =
          plan.start(rt::ConstView(send.view()), recv.view());
      EXPECT_TRUE(h.valid());
      EXPECT_EQ(h.tag_stream(), 1);  // stream 0 is the direct-call stream
      EXPECT_EQ(plan.in_flight(), 1 - static_cast<int>(h.test()));
      if (is_sim) {
        // No events have run since start: the exchange cannot be complete.
        EXPECT_FALSE(h.test());
      } else {
        // The threads backend progresses eagerly inside start().
        EXPECT_TRUE(h.test());
      }
      co_await h.wait();
      EXPECT_TRUE(h.test());
      EXPECT_EQ(plan.in_flight(), 0);
      EXPECT_TRUE(test::check_recv(recv, me, p, block));
      EXPECT_GE(h.finished_at(), h.started_at());
      EXPECT_EQ(plan.executions(), 1u);

      // Waiting again on a completed handle is a no-op, not an error.
      co_await h.wait();

      // The next start draws the next stream.
      plan::CollectiveHandle h2 =
          plan.start(rt::ConstView(send.view()), recv.view());
      EXPECT_EQ(h2.tag_stream(), 2);
      co_await h2.wait();
      EXPECT_EQ(plan.executions(), 2u);
    };
  };
  test::run_sim(machine, body(true));
  test::run_smp(p, body(false));
}

TEST(CollectiveHandle, InvalidHandleIsInertAndWaitThrows) {
  plan::CollectiveHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.test());
  EXPECT_EQ(h.tag_stream(), -1);
  EXPECT_EQ(h.seconds(), 0.0);
  EXPECT_THROW(h.wait(), std::logic_error);
}

TEST(Concurrency, StartedPlanOverlapsDirectStreamZeroCall) {
  // A started operation must not cross-match a *direct* (non-plan) call of
  // the same collective running concurrently: direct calls own stream 0,
  // started ops draw from 1 up.
  const topo::Machine machine = topo::generic(1, 4);
  const auto body = [&](Comm& world) -> Task<void> {
    const int p = world.size();
    const int me = world.rank();
    const std::size_t block = 16;
    coll::AllgatherDesc desc;
    desc.block = block;
    desc.algo = coll::AllgatherAlgo::kRing;
    plan::CollectivePlan plan =
        plan::make_plan(world, machine, model::test_params(), desc);

    Buffer mine = Buffer::real(block);
    Buffer planned = Buffer::real(block * p);
    Buffer direct_in = Buffer::real(block);
    Buffer direct_out = Buffer::real(block * p);
    for (std::size_t k = 0; k < block; ++k) {
      mine.data()[k] = test::pattern(me, 0, k);
      direct_in.data()[k] =
          static_cast<std::byte>(~std::to_integer<int>(test::pattern(me, 0, k)));
    }
    plan::CollectiveHandle h =
        plan.start(rt::ConstView(mine.view()), planned.view());
    // Same collective, same communicator, stream 0 — in flight together.
    co_await rt::allgather(world, rt::ConstView(direct_in.view()),
                           direct_out.view());
    co_await h.wait();
    for (int r = 0; r < p; ++r) {
      for (std::size_t k = 0; k < block; ++k) {
        EXPECT_EQ(planned.data()[r * block + k], test::pattern(r, 0, k));
        EXPECT_EQ(direct_out.data()[r * block + k],
                  static_cast<std::byte>(
                      ~std::to_integer<int>(test::pattern(r, 0, k))));
      }
    }
  };
  test::run_sim(machine, body);
  test::run_smp(machine.total_ranks(), body);
}

TEST(CollectiveHandle, StartValidatesExtentsUpFront) {
  test::run_sim_flat(1, [](Comm& world) -> Task<void> {
    const topo::Machine machine = topo::generic(1, 1);
    plan::CollectivePlan plan =
        make_a2a_plan(world, machine, coll::Algo::kPairwiseDirect, 8);
    Buffer ok = Buffer::real(8);
    Buffer bad = Buffer::real(4);
    // Unlike execute() (which throws lazily when awaited), start() throws
    // immediately: nothing was posted yet.
    EXPECT_THROW(plan.start(rt::ConstView(bad.view()), ok.view()),
                 std::invalid_argument);
    EXPECT_THROW(plan.start_inplace(ok.view()), std::invalid_argument);
    EXPECT_EQ(plan.in_flight(), 0);
    EXPECT_EQ(plan.executions(), 0u);
    co_return;
  });
}

// ---------------------------------------------------------------------------
// Concurrency: two collectives in flight
// ---------------------------------------------------------------------------

/// Two simultaneous alltoalls on ONE communicator, same algorithm (so only
/// the tag stream separates their traffic), distinct payloads. Bytes must
/// land exactly; a cross-match would deliver A's pattern into B's buffer.
Task<void> two_alltoalls_body(Comm& world, const topo::Machine& machine) {
  const int p = world.size();
  const int me = world.rank();
  const std::size_t block = 24;
  plan::CollectivePlan pa =
      make_a2a_plan(world, machine, coll::Algo::kNonblockingDirect, block);
  plan::CollectivePlan pb =
      make_a2a_plan(world, machine, coll::Algo::kNonblockingDirect, block);

  Buffer sa = Buffer::real(block * p);
  Buffer ra = Buffer::real(block * p);
  Buffer sb = Buffer::real(block * p);
  Buffer rb = Buffer::real(block * p);
  test::fill_send(sa, me, p, block);
  // B's payload: same shape, complemented bytes — any cross-match shows.
  test::fill_send(sb, me, p, block);
  for (std::size_t i = 0; i < sb.size(); ++i) {
    sb.data()[i] = static_cast<std::byte>(~std::to_integer<int>(sb.data()[i]));
  }

  plan::CollectiveHandle ha = pa.start(rt::ConstView(sa.view()), ra.view());
  plan::CollectiveHandle hb = pb.start(rt::ConstView(sb.view()), rb.view());
  EXPECT_NE(ha.tag_stream(), hb.tag_stream());
  co_await hb.wait();  // completion order need not match start order
  co_await ha.wait();

  EXPECT_TRUE(test::check_recv(ra, me, p, block));
  for (int s = 0; s < p; ++s) {
    for (std::size_t k = 0; k < block; ++k) {
      const auto want = static_cast<std::byte>(
          ~std::to_integer<int>(test::pattern(s, me, k)));
      EXPECT_EQ(rb.data()[s * block + k], want)
          << "rank " << me << " cross-matched block from " << s;
    }
  }
}

TEST(Concurrency, TwoAlltoallsOneCommOnBothBackends) {
  const topo::Machine machine = topo::generic(2, 4);
  test::run_sim(machine, [&](Comm& w) { return two_alltoalls_body(w, machine); });
  test::run_smp(machine.total_ranks(),
                [&](Comm& w) { return two_alltoalls_body(w, machine); });
}

TEST(Concurrency, TwoAlltoallsAreDeterministicInVirtualTime) {
  const topo::Machine machine = topo::generic(2, 4);
  const auto timed = [&] {
    return test::run_sim(machine,
                         [&](Comm& w) { return two_alltoalls_body(w, machine); });
  };
  const double t1 = timed();
  const double t2 = timed();
  EXPECT_EQ(t1, t2) << "concurrent collectives must stay bit-for-bit "
                       "deterministic";
}

/// Alltoall + allreduce in flight together, both on locality algorithms
/// whose bundles overlap (same group shape over the same ranks, distinct
/// sub-communicators per plan).
Task<void> mixed_ops_body(Comm& world, const topo::Machine& machine) {
  const int p = world.size();
  const int me = world.rank();
  const std::size_t block = 16;
  constexpr int kElems = 8;
  plan::CollectivePlan pa =
      make_a2a_plan(world, machine, coll::Algo::kNodeAware, block, 2);

  coll::AllreduceDesc ard;
  ard.count = kElems;
  ard.combiner = coll::sum_combiner<std::int64_t>();
  ard.algo = coll::AllreduceAlgo::kNodeAware;
  plan::PlanOptions popts;
  popts.group_size = 2;
  plan::CollectivePlan pr =
      plan::make_plan(world, machine, model::test_params(), ard, popts);

  Buffer send = Buffer::real(block * p);
  Buffer recv = Buffer::real(block * p);
  test::fill_send(send, me, p, block);
  Buffer acc = Buffer::real(kElems * sizeof(std::int64_t));
  for (int i = 0; i < kElems; ++i) {
    acc.typed<std::int64_t>()[i] = me * 10 + i;
  }

  plan::CollectiveHandle ha = pa.start(rt::ConstView(send.view()), recv.view());
  plan::CollectiveHandle hr = pr.start_inplace(acc.view());
  co_await ha.wait();
  co_await hr.wait();

  EXPECT_TRUE(test::check_recv(recv, me, p, block));
  for (int i = 0; i < kElems; ++i) {
    const std::int64_t want =
        static_cast<std::int64_t>(p) * (p - 1) / 2 * 10 +
        static_cast<std::int64_t>(p) * i;
    EXPECT_EQ(acc.typed<std::int64_t>()[i], want);
  }
}

TEST(Concurrency, AlltoallPlusAllreduceOnOverlappingSubcommsBothBackends) {
  const topo::Machine machine = topo::generic(2, 4);
  test::run_sim(machine, [&](Comm& w) { return mixed_ops_body(w, machine); });
  test::run_smp(machine.total_ranks(),
                [&](Comm& w) { return mixed_ops_body(w, machine); });
}

// ---------------------------------------------------------------------------
// Guards: MPI_Start semantics, move/destroy protection
// ---------------------------------------------------------------------------

TEST(CollectivePlan, SecondStartWhileInFlightThrows) {
  const topo::Machine machine = topo::generic(1, 4);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    const int p = world.size();
    const std::size_t block = 8;
    plan::CollectivePlan plan =
        make_a2a_plan(world, machine, coll::Algo::kPairwiseDirect, block);
    Buffer send = Buffer::real(block * p);
    Buffer recv = Buffer::real(block * p);
    test::fill_send(send, world.rank(), p, block);
    plan::CollectiveHandle h =
        plan.start(rt::ConstView(send.view()), recv.view());
    EXPECT_THROW(plan.start(rt::ConstView(send.view()), recv.view()),
                 std::logic_error);
    co_await h.wait();
    // Idle again: a new start works.
    plan::CollectiveHandle h2 =
        plan.start(rt::ConstView(send.view()), recv.view());
    co_await h2.wait();
    EXPECT_TRUE(test::check_recv(recv, world.rank(), p, block));
  });
}

TEST(CollectivePlan, MoveWithOperationInFlightThrows) {
  const topo::Machine machine = topo::generic(1, 4);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    const int p = world.size();
    const std::size_t block = 8;
    plan::CollectivePlan plan =
        make_a2a_plan(world, machine, coll::Algo::kNonblockingDirect, block);
    Buffer send = Buffer::real(block * p);
    Buffer recv = Buffer::real(block * p);
    test::fill_send(send, world.rank(), p, block);
    plan::CollectiveHandle h =
        plan.start(rt::ConstView(send.view()), recv.view());
    // The started coroutine holds `this`: moving now would dangle it.
    EXPECT_THROW(plan::CollectivePlan moved(std::move(plan)),
                 std::logic_error);
    co_await h.wait();
    // Completed: the plan is movable again, and the moved plan works.
    plan::CollectivePlan moved(std::move(plan));
    co_await moved.execute(rt::ConstView(send.view()), recv.view());
    EXPECT_TRUE(test::check_recv(recv, world.rank(), p, block));
    EXPECT_EQ(moved.executions(), 2u);
  });
}

// ---------------------------------------------------------------------------
// Schedule
// ---------------------------------------------------------------------------

Task<void> schedule_deps_body(Comm& world, const topo::Machine& machine) {
  const int p = world.size();
  const int me = world.rank();
  const std::size_t block = 16;
  std::vector<plan::CollectivePlan> plans;
  std::vector<Buffer> sends;
  std::vector<Buffer> recvs;
  for (int k = 0; k < 3; ++k) {
    plans.push_back(
        make_a2a_plan(world, machine, coll::Algo::kNonblockingDirect, block));
    sends.push_back(Buffer::real(block * p));
    recvs.push_back(Buffer::real(block * p));
    test::fill_send(sends[k], me, p, block);
  }

  plan::Schedule sched;
  for (int k = 0; k < 3; ++k) {
    sched.add(plans[k], rt::ConstView(sends[k].view()), recvs[k].view());
  }
  // Diamond-ish: op 2 runs strictly after ops 0 and 1.
  sched.add_dependency(0, 2);
  sched.add_dependency(1, 2);
  co_await sched.run();

  for (int k = 0; k < 3; ++k) {
    EXPECT_TRUE(test::check_recv(recvs[k], me, p, block)) << "op " << k;
    EXPECT_GT(sched.stats(k).finished_at, 0.0);
  }
  // Dependency ordering is visible in the per-op clocks.
  EXPECT_GE(sched.stats(2).started_at, sched.stats(0).finished_at);
  EXPECT_GE(sched.stats(2).started_at, sched.stats(1).finished_at);
  EXPECT_GE(sched.makespan(), 0.0);
  EXPECT_GT(sched.critical_path(), 0.0);
  EXPECT_LE(sched.critical_path(), sched.makespan() + 1e-12);
}

TEST(Schedule, DependencyOrderingOnBothBackends) {
  const topo::Machine machine = topo::generic(2, 2);
  test::run_sim(machine,
                [&](Comm& w) { return schedule_deps_body(w, machine); });
  test::run_smp(machine.total_ranks(),
                [&](Comm& w) { return schedule_deps_body(w, machine); });
}

TEST(Schedule, CycleAndReuseAreRejected) {
  const topo::Machine machine = topo::generic(1, 2);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    const int p = world.size();
    const std::size_t block = 8;
    plan::CollectivePlan pa =
        make_a2a_plan(world, machine, coll::Algo::kPairwiseDirect, block);
    plan::CollectivePlan pb =
        make_a2a_plan(world, machine, coll::Algo::kPairwiseDirect, block);
    Buffer s = Buffer::real(block * p);
    Buffer r = Buffer::real(block * p);
    test::fill_send(s, world.rank(), p, block);
    {
      plan::Schedule cyc;
      const int a = cyc.add(pa, rt::ConstView(s.view()), r.view());
      const int b = cyc.add(pb, rt::ConstView(s.view()), r.view());
      cyc.add_dependency(a, b);
      cyc.add_dependency(b, a);
      EXPECT_THROW(co_await cyc.run(), std::invalid_argument);
      EXPECT_THROW(cyc.add_dependency(a, a), std::invalid_argument);
    }
    plan::Schedule ok;
    ok.add(pa, rt::ConstView(s.view()), r.view());
    co_await ok.run();
    EXPECT_THROW(co_await ok.run(), std::logic_error);
    EXPECT_TRUE(test::check_recv(r, world.rank(), p, block));
  });
}

TEST(Schedule, UnorderedOpsOnOnePlanSurfaceThePlanError) {
  const topo::Machine machine = topo::generic(1, 2);
  test::run_smp(machine.total_ranks(), [&](Comm& world) -> Task<void> {
    const int p = world.size();
    const std::size_t block = 8;
    plan::CollectivePlan plan =
        make_a2a_plan(world, machine, coll::Algo::kPairwiseDirect, block);
    Buffer s = Buffer::real(block * p);
    Buffer r1 = Buffer::real(block * p);
    Buffer r2 = Buffer::real(block * p);
    test::fill_send(s, world.rank(), p, block);
    // Same plan twice WITH an ordering edge: legal, runs back to back.
    plan::Schedule sched;
    const int a = sched.add(plan, rt::ConstView(s.view()), r1.view());
    const int b = sched.add(plan, rt::ConstView(s.view()), r2.view());
    sched.add_dependency(a, b);
    co_await sched.run();
    EXPECT_TRUE(test::check_recv(r1, world.rank(), p, block));
    EXPECT_TRUE(test::check_recv(r2, world.rank(), p, block));
    EXPECT_EQ(plan.executions(), 2u);
  });
}

// ---------------------------------------------------------------------------
// Virtual-time equivalence: chained schedule == serialized execute()
// ---------------------------------------------------------------------------

TEST(Schedule, ChainedScheduleMatchesSerializedExecuteVirtualTime) {
  const topo::Machine machine = topo::generic(2, 4);
  const std::size_t block = 32;
  const auto timed = [&](bool use_schedule) {
    return test::run_sim(machine, [&](Comm& world) -> Task<void> {
      const int p = world.size();
      std::vector<plan::CollectivePlan> plans;
      std::vector<Buffer> sends;
      std::vector<Buffer> recvs;
      for (int k = 0; k < 2; ++k) {
        plans.push_back(
            make_a2a_plan(world, machine, coll::Algo::kNodeAware, block));
        sends.push_back(world.alloc_buffer(block * p));
        recvs.push_back(world.alloc_buffer(block * p));
      }
      co_await rt::barrier(world);
      if (use_schedule) {
        plan::Schedule sched;
        for (int k = 0; k < 2; ++k) {
          sched.add(plans[k], rt::ConstView(sends[k].view()),
                    recvs[k].view());
        }
        sched.add_dependency(0, 1);  // serialize through the dependency
        co_await sched.run();
      } else {
        for (int k = 0; k < 2; ++k) {
          co_await plans[k].execute(rt::ConstView(sends[k].view()),
                                    recvs[k].view());
        }
      }
    });
  };
  EXPECT_DOUBLE_EQ(timed(false), timed(true))
      << "a fully chained schedule must reproduce the serialized path "
         "bit-for-bit";
}

TEST(Schedule, OverlapHarnessRunsAndOverlapWins) {
  bench::RunSpec spec;
  spec.machine = topo::generic_hier(2, 1, 2, 2).desc();
  spec.net = model::test_params();
  spec.algo = coll::Algo::kNonblockingDirect;
  spec.block = 256;
  spec.overlap = 3;
  spec.compute_bytes = 4096;
  const bench::RunResult overlapped = bench::run_sim(spec);
  spec.overlap_chain = true;
  const bench::RunResult chained = bench::run_sim(spec);

  ASSERT_EQ(overlapped.op_seconds.size(), 3u);
  ASSERT_EQ(chained.op_seconds.size(), 3u);
  EXPECT_GT(overlapped.seconds, 0.0);
  EXPECT_GT(overlapped.critical_path_seconds, 0.0);
  // Chaining can only hurt: the overlapped batch finishes no later.
  EXPECT_LE(overlapped.seconds, chained.seconds);
  // And with per-op compute to hide, it must finish strictly earlier.
  EXPECT_LT(overlapped.seconds, 0.999 * chained.seconds);
}

// ---------------------------------------------------------------------------
// AsyncOp building block
// ---------------------------------------------------------------------------

TEST(AsyncOp, MultipleWaitersResumeInOrderAndErrorsRethrow) {
  test::run_sim_flat(2, [](Comm& world) -> Task<void> {
    if (world.size() < 2) {
      co_return;
    }
    // A detached task that suspends on a real receive, with two waiters.
    auto op = std::make_shared<rt::AsyncOp>();
    Buffer buf = Buffer::real(4);
    const int me = world.rank();
    if (me == 0) {
      auto task = [](Comm& w, rt::MutView v) -> Task<void> {
        co_await w.recv(v, 1, 7);
      }(world, buf.view());
      rt::spawn_detached(std::move(task), op);
      EXPECT_FALSE(op->done());
      std::vector<int> order;
      auto waiter = [](std::shared_ptr<rt::AsyncOp> o, std::vector<int>* out,
                       int id) -> Task<void> {
        co_await o->wait();
        out->push_back(id);
      };
      auto w1 = std::make_shared<rt::AsyncOp>();
      auto w2 = std::make_shared<rt::AsyncOp>();
      rt::spawn_detached(waiter(op, &order, 1), w1);
      rt::spawn_detached(waiter(op, &order, 2), w2);
      co_await op->wait();
      EXPECT_TRUE(w1->done());
      EXPECT_TRUE(w2->done());
      EXPECT_EQ(order.size(), 2u);
      if (order.size() == 2) {
        EXPECT_EQ(order[0], 1);
        EXPECT_EQ(order[1], 2);
      }
    } else {
      Buffer msg = Buffer::real(4);
      co_await world.send(rt::ConstView(msg.view()), 0, 7);
    }
  });
}

}  // namespace
}  // namespace mca2a
