/// Byte-exact correctness of every all-to-all algorithm on both backends,
/// over a grid of machine shapes, group sizes, block sizes and inner
/// exchanges. The reference semantics: recv block s == send block of rank s
/// destined to me.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/alltoall.hpp"
#include "runtime/comm_bundle.hpp"
#include "test_util.hpp"
#include "topo/presets.hpp"

namespace mca2a {
namespace {

using coll::Algo;
using coll::Inner;
using coll::Options;
using rt::Buffer;
using rt::Comm;
using rt::Task;

enum class Backend { kSim, kSmp };

struct Case {
  Backend backend;
  Algo algo;
  Inner inner;
  int nodes;
  int sockets;
  int numa;
  int cores;
  int group_size;  // 0 = ppn
  std::size_t block;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string algo(coll::algo_name(c.algo));
  for (char& ch : algo) {
    if (!isalnum(static_cast<unsigned char>(ch))) {
      ch = '_';
    }
  }
  const char* inner = c.inner == Inner::kPairwise      ? "pw"
                      : c.inner == Inner::kNonblocking ? "nb"
                                                       : "bruck";
  return std::string(c.backend == Backend::kSim ? "sim" : "smp") + "_" + algo +
         "_" + inner + "_n" + std::to_string(c.nodes) + "x" +
         std::to_string(c.sockets) + "x" + std::to_string(c.numa) + "x" +
         std::to_string(c.cores) + "_g" + std::to_string(c.group_size) + "_b" +
         std::to_string(c.block);
}

topo::Machine machine_for(const Case& c) {
  return topo::generic_hier(c.nodes, c.sockets, c.numa, c.cores);
}

/// Run one case and validate every byte on every rank.
void run_case(const Case& c) {
  const topo::Machine machine = machine_for(c);
  const int p = machine.total_ranks();
  const int g = c.group_size == 0 ? machine.ppn() : c.group_size;

  auto body = [&](Comm& world) -> Task<void> {
    std::optional<rt::LocalityComms> lc;
    if (coll::needs_locality(c.algo)) {
      lc.emplace(rt::build_locality_comms(world, machine, g,
                                          coll::needs_leader_comms(c.algo)));
    }
    Buffer send = Buffer::real(c.block * p);
    Buffer recv = Buffer::real(c.block * p);
    test::fill_send(send, world.rank(), p, c.block);
    Options opts;
    opts.inner = c.inner;
    opts.batch_window = 3;  // exercise multiple batches
    co_await coll::run_alltoall(c.algo, world, lc ? &*lc : nullptr,
                                send.view(), recv.view(), c.block, opts);
    EXPECT_TRUE(test::check_recv(recv, world.rank(), p, c.block));
  };

  if (c.backend == Backend::kSim) {
    test::run_sim(machine, body);
  } else {
    test::run_smp(p, body);
  }
}

class AlltoallGrid : public ::testing::TestWithParam<Case> {};

TEST_P(AlltoallGrid, BytesRouteCorrectly) { run_case(GetParam()); }

std::vector<Case> direct_cases() {
  std::vector<Case> cases;
  for (Backend b : {Backend::kSim, Backend::kSmp}) {
    for (Algo a : {Algo::kPairwiseDirect, Algo::kNonblockingDirect,
                   Algo::kBruckDirect, Algo::kBatchedDirect,
                   Algo::kSystemMpi}) {
      // Flat shapes incl. non-power-of-two and single-rank worlds.
      for (int ranks : {1, 2, 3, 7, 8, 13}) {
        for (std::size_t block : {std::size_t{1}, std::size_t{48}}) {
          Case c{b, a, Inner::kPairwise, 1, 1, 1, ranks, 0, block};
          cases.push_back(c);
        }
      }
    }
  }
  return cases;
}

std::vector<Case> locality_cases() {
  std::vector<Case> cases;
  struct Shape {
    int nodes, sockets, numa, cores;
  };
  // 2x1x1x4=8 ranks; 3x1x2x2=12; 2x2x2x2=16 (all locality levels); 4x1x1x6=24.
  const std::vector<Shape> shapes = {
      {2, 1, 1, 4}, {3, 1, 2, 2}, {2, 2, 2, 2}, {4, 1, 1, 6}};
  for (Backend b : {Backend::kSim, Backend::kSmp}) {
    for (Algo a : {Algo::kHierarchical, Algo::kMultileader, Algo::kNodeAware,
                   Algo::kLocalityAware, Algo::kMultileaderNodeAware}) {
      for (const Shape& sh : shapes) {
        const int ppn = sh.sockets * sh.numa * sh.cores;
        std::vector<int> groups;
        if (a == Algo::kHierarchical || a == Algo::kNodeAware) {
          groups = {0};  // whole node
        } else {
          groups = {1, 2, ppn / 2};  // 1 rank/group .. half node
          std::sort(groups.begin(), groups.end());
          groups.erase(std::unique(groups.begin(), groups.end()),
                       groups.end());
        }
        for (int g : groups) {
          if (g > 0 && ppn % g != 0) {
            continue;
          }
          for (Inner in :
               {Inner::kPairwise, Inner::kNonblocking, Inner::kBruck}) {
            for (std::size_t block : {std::size_t{4}, std::size_t{96}}) {
              cases.push_back(Case{b, a, in, sh.nodes, sh.sockets, sh.numa,
                                   sh.cores, g, block});
            }
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Direct, AlltoallGrid,
                         ::testing::ValuesIn(direct_cases()), case_name);
INSTANTIATE_TEST_SUITE_P(Locality, AlltoallGrid,
                         ::testing::ValuesIn(locality_cases()), case_name);

// --- property-style checks ---------------------------------------------------

TEST(AlltoallProperty, AllAlgorithmsAgreeWithEachOther) {
  // Same input on the same machine must produce the same output for every
  // algorithm; validated transitively by the pattern checks above, and
  // directly here against the nonblocking reference.
  const topo::Machine machine = topo::generic_hier(2, 2, 1, 3);
  const int p = machine.total_ranks();
  const std::size_t block = 24;
  for (Algo a : {Algo::kPairwiseDirect, Algo::kBruckDirect,
                 Algo::kNodeAware, Algo::kMultileaderNodeAware}) {
    test::run_sim(machine, [&, a](Comm& world) -> Task<void> {
      std::optional<rt::LocalityComms> lc;
      if (coll::needs_locality(a)) {
        lc.emplace(rt::build_locality_comms(world, machine, 3, true));
      }
      Buffer send = Buffer::real(block * p);
      Buffer ref = Buffer::real(block * p);
      Buffer out = Buffer::real(block * p);
      test::fill_send(send, world.rank(), p, block);
      co_await coll::alltoall_nonblocking(world, send.view(), ref.view(),
                                          block);
      Options opts;
      co_await coll::run_alltoall(a, world, lc ? &*lc : nullptr, send.view(),
                                  out.view(), block, opts);
      for (std::size_t i = 0; i < block * p; ++i) {
        EXPECT_EQ(out.data()[i], ref.data()[i])
            << coll::algo_name(a) << " differs at byte " << i;
      }
    });
  }
}

TEST(AlltoallProperty, SelfTransposeRoundTrip) {
  // Applying alltoall twice with the roles of the buffers swapped returns
  // every rank's original data (the exchange is a global transpose).
  const int p = 6;
  const std::size_t block = 16;
  test::run_sim_flat(p, [&](Comm& c) -> Task<void> {
    Buffer orig = Buffer::real(block * p);
    Buffer once = Buffer::real(block * p);
    Buffer twice = Buffer::real(block * p);
    test::fill_send(orig, c.rank(), p, block);
    co_await coll::alltoall_pairwise(c, orig.view(), once.view(), block);
    co_await coll::alltoall_pairwise(c, once.view(), twice.view(), block);
    // The exchange is an involution: byte (a -> b) travels to b and then
    // back to a, so two applications give the identity.
    for (std::size_t i = 0; i < block * p; ++i) {
      EXPECT_EQ(twice.data()[i], orig.data()[i]) << "byte " << i;
    }
  });
}

TEST(AlltoallProperty, ZeroByteBlocksAreLegal) {
  test::run_sim_flat(4, [](Comm& c) -> Task<void> {
    Buffer send = Buffer::real(0);
    Buffer recv = Buffer::real(0);
    co_await coll::alltoall_pairwise(c, send.view(), recv.view(), 0);
    co_await coll::alltoall_nonblocking(c, send.view(), recv.view(), 0);
  });
}

TEST(AlltoallProperty, SingleRankWorld) {
  test::run_sim_flat(1, [](Comm& c) -> Task<void> {
    const std::size_t block = 32;
    Buffer send = Buffer::real(block);
    Buffer recv = Buffer::real(block);
    test::fill_send(send, 0, 1, block);
    co_await coll::alltoall_bruck(c, send.view(), recv.view(), block);
    EXPECT_TRUE(test::check_recv(recv, 0, 1, block));
  });
}

TEST(AlltoallProperty, LocalityAlgorithmsRejectMissingBundle) {
  test::run_sim_flat(2, [](Comm& c) -> Task<void> {
    Buffer b = Buffer::real(8);
    Options opts;
    EXPECT_THROW(
        rt::sync_wait(coll::run_alltoall(Algo::kNodeAware, c, nullptr,
                                         b.view(), b.view(), 4, opts)),
        std::invalid_argument);
    co_return;
  });
}

TEST(AlltoallProperty, BatchedWindowOneStillRoutesCorrectly) {
  const int p = 5;
  const std::size_t block = 12;
  test::run_sim_flat(p, [&](Comm& c) -> Task<void> {
    Buffer send = Buffer::real(block * p);
    Buffer recv = Buffer::real(block * p);
    test::fill_send(send, c.rank(), p, block);
    co_await coll::alltoall_batched(c, send.view(), recv.view(), block, 1);
    EXPECT_TRUE(test::check_recv(recv, c.rank(), p, block));
  });
}

}  // namespace
}  // namespace mca2a
