#pragma once
/// Shared test helpers: deterministic payload patterns (so any misrouted or
/// corrupted byte is caught), and one-line drivers for both backends.

#include <gtest/gtest.h>

#include <cstddef>
#include <functional>

#include "model/presets.hpp"
#include "runtime/buffer.hpp"
#include "runtime/comm.hpp"
#include "runtime/task.hpp"
#include "sim/cluster.hpp"
#include "smp/smp_runtime.hpp"
#include "topo/presets.hpp"

namespace mca2a::test {

/// Pattern byte for the k-th byte of the (src -> dst) block.
inline std::byte pattern(int src, int dst, std::size_t k) {
  return static_cast<std::byte>((src * 131 + dst * 17 +
                                 static_cast<int>(k % 251) * 7) &
                                0xFF);
}

/// Fill an alltoall send buffer: block d carries pattern(me, d, .).
inline void fill_send(rt::Buffer& buf, int me, int p, std::size_t block) {
  auto bytes = buf.view();
  for (int d = 0; d < p; ++d) {
    for (std::size_t k = 0; k < block; ++k) {
      bytes.ptr[d * block + k] = pattern(me, d, k);
    }
  }
}

/// Check an alltoall recv buffer: block s must carry pattern(s, me, .).
inline ::testing::AssertionResult check_recv(const rt::Buffer& buf, int me,
                                             int p, std::size_t block) {
  auto bytes = buf.view();
  for (int s = 0; s < p; ++s) {
    for (std::size_t k = 0; k < block; ++k) {
      const std::byte want = pattern(s, me, k);
      const std::byte got = bytes.ptr[s * block + k];
      if (got != want) {
        return ::testing::AssertionFailure()
               << "rank " << me << ": block from " << s << " byte " << k
               << ": got " << static_cast<int>(got) << " want "
               << static_cast<int>(want);
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Run `body` as every rank of a simulated cluster (payloads carried).
/// Returns the final virtual time.
inline double run_sim(const topo::Machine& machine,
                      const std::function<rt::Task<void>(rt::Comm&)>& body,
                      model::NetParams net = model::test_params(),
                      bool carry_data = true, std::uint64_t seed = 1) {
  sim::ClusterConfig cfg;
  cfg.machine = machine.desc();
  cfg.net = std::move(net);
  cfg.carry_data = carry_data;
  cfg.noise_seed = seed;
  sim::Cluster cluster(cfg);
  return cluster.run(body);
}

/// Run `body` as every rank of a flat simulated machine.
inline double run_sim_flat(
    int ranks, const std::function<rt::Task<void>(rt::Comm&)>& body) {
  return run_sim(topo::generic(1, ranks), body);
}

/// Run `body` on the threads backend with `ranks` OS threads.
inline void run_smp(int ranks,
                    const std::function<rt::Task<void>(rt::Comm&)>& body) {
  smp::run_threads(ranks, body);
}

}  // namespace mca2a::test
