/// Unit tests for the network model: validation, cost monotonicity, level
/// ordering, rendezvous behaviour, preset sanity.

#include <gtest/gtest.h>

#include "model/cost.hpp"
#include "model/presets.hpp"

namespace mca2a::model {
namespace {

using topo::Level;

TEST(Model, PresetsValidate) {
  EXPECT_NO_THROW(validate(omni_path()));
  EXPECT_NO_THROW(validate(slingshot()));
  EXPECT_NO_THROW(validate(test_params()));
}

TEST(Model, ValidationRejectsNegativeAlpha) {
  NetParams p = test_params();
  p.at(Level::kNetwork).alpha = -1.0;
  EXPECT_THROW(validate(p), std::invalid_argument);
}

TEST(Model, ValidationRejectsBadRendezvousFactor) {
  NetParams p = test_params();
  p.rendezvous_nic_factor = 0.5;
  EXPECT_THROW(validate(p), std::invalid_argument);
}

TEST(Model, ValidationRejectsBadVendorFactor) {
  NetParams p = test_params();
  p.vendor_factor = 0.0;
  EXPECT_THROW(validate(p), std::invalid_argument);
  p.vendor_factor = 1.5;
  EXPECT_THROW(validate(p), std::invalid_argument);
}

TEST(Model, WireTimeMonotonicInSize) {
  const NetParams p = omni_path();
  double prev = 0.0;
  for (std::size_t bytes : {0, 1, 64, 4096, 1 << 20}) {
    const double t = wire_time(p, Level::kNetwork, bytes);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Model, LatencyOrderedByLocality) {
  for (const NetParams& p : {omni_path(), slingshot()}) {
    EXPECT_LE(p.at(Level::kSelf).alpha, p.at(Level::kNuma).alpha);
    EXPECT_LE(p.at(Level::kNuma).alpha, p.at(Level::kSocket).alpha);
    EXPECT_LE(p.at(Level::kSocket).alpha, p.at(Level::kNode).alpha);
    EXPECT_LT(p.at(Level::kNode).alpha, p.at(Level::kNetwork).alpha);
  }
}

TEST(Model, BandwidthOrderedByLocality) {
  for (const NetParams& p : {omni_path(), slingshot()}) {
    EXPECT_LE(p.at(Level::kNuma).beta, p.at(Level::kSocket).beta);
    EXPECT_LE(p.at(Level::kSocket).beta, p.at(Level::kNode).beta);
    EXPECT_LT(p.at(Level::kNode).beta, p.at(Level::kNetwork).beta);
  }
}

TEST(Model, RendezvousThreshold) {
  const NetParams p = omni_path();
  EXPECT_FALSE(is_rendezvous(p, p.eager_threshold));
  EXPECT_TRUE(is_rendezvous(p, p.eager_threshold + 1));
  // Rendezvous NIC time is scaled up.
  const double eager = nic_inject_time(p, p.eager_threshold);
  const double rdv = nic_inject_time(p, p.eager_threshold + 1);
  EXPECT_GT(rdv, eager * 1.1);
}

TEST(Model, SlingshotFasterThanOmniPathPerByte) {
  // Table 1: Slingshot-11 (200G) vs Omni-Path (100G).
  EXPECT_LT(slingshot().nic_inject_beta, omni_path().nic_inject_beta);
  EXPECT_LT(slingshot().at(Level::kNetwork).beta,
            omni_path().at(Level::kNetwork).beta);
}

TEST(Model, MatchTimeLinearInQueueLength) {
  const NetParams p = omni_path();
  const double base = match_time(p, 0);
  const double q100 = match_time(p, 100);
  const double q200 = match_time(p, 200);
  EXPECT_NEAR(q200 - q100, q100 - base, 1e-15);
  EXPECT_GT(q100, base);
}

TEST(Model, PackTimeProportionalToBytes) {
  const NetParams p = omni_path();
  EXPECT_DOUBLE_EQ(pack_time(p, 0), 0.0);
  EXPECT_DOUBLE_EQ(pack_time(p, 2000), 2.0 * pack_time(p, 1000));
}

TEST(Model, ForMachineMapsPresets) {
  EXPECT_EQ(for_machine("dane").name, "omni-path");
  EXPECT_EQ(for_machine("amber").name, "omni-path");
  EXPECT_EQ(for_machine("tuolomne").name, "slingshot-11");
  EXPECT_THROW(for_machine("unknown"), std::invalid_argument);
}

TEST(Model, SendRecvCpuTimesIncludeCopy) {
  const NetParams p = omni_path();
  const double small = send_cpu_time(p, Level::kNetwork, 0);
  const double big = send_cpu_time(p, Level::kNetwork, 1 << 20);
  EXPECT_GT(big, small);
  EXPECT_NEAR(big - small, (1 << 20) * p.cpu_copy_beta, 1e-12);
}

}  // namespace
}  // namespace mca2a::model
