/// Sequencing tests: repeated and mixed collectives on the SAME
/// communicators and bundles, in one rank program. Catches state leakage
/// between invocations (stale matching queues, tag collisions, bundle
/// reuse) that single-shot tests cannot see.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "coll_ext/allgather.hpp"
#include "coll_ext/allreduce.hpp"
#include "core/alltoall.hpp"
#include "runtime/collectives.hpp"
#include "runtime/comm_bundle.hpp"
#include "test_util.hpp"

namespace mca2a {
namespace {

using rt::Buffer;
using rt::Comm;
using rt::LocalityComms;
using rt::Task;

TEST(Sequences, RepeatedAlltoallOnOneBundle) {
  const topo::Machine machine = topo::generic(2, 6);
  const int p = machine.total_ranks();
  constexpr std::size_t kBlock = 32;
  for (bool smp : {false, true}) {
    auto body = [&](Comm& world) -> Task<void> {
      LocalityComms lc = rt::build_locality_comms(world, machine, 3, true);
      Buffer send = Buffer::real(kBlock * p);
      Buffer recv = Buffer::real(kBlock * p);
      for (int rep = 0; rep < 4; ++rep) {
        test::fill_send(send, world.rank(), p, kBlock);
        coll::Options opts;
        opts.inner = rep % 2 == 0 ? coll::Inner::kPairwise
                                  : coll::Inner::kNonblocking;
        co_await coll::alltoall_multileader_node_aware(
            lc, send.view(), recv.view(), kBlock, opts);
        EXPECT_TRUE(test::check_recv(recv, world.rank(), p, kBlock))
            << "rep " << rep;
      }
    };
    if (smp) {
      test::run_smp(p, body);
    } else {
      test::run_sim(machine, body);
    }
  }
}

TEST(Sequences, MixedCollectivesShareCommunicators) {
  // alltoall -> allreduce -> allgather -> alltoall on the same bundle; any
  // stray message from one collective corrupts the next.
  const topo::Machine machine = topo::generic(3, 4);
  const int p = machine.total_ranks();
  constexpr std::size_t kBlock = 16;
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    LocalityComms lc = rt::build_locality_comms(world, machine, 2, true);
    Buffer send = Buffer::real(kBlock * p);
    Buffer recv = Buffer::real(kBlock * p);

    test::fill_send(send, world.rank(), p, kBlock);
    co_await coll::alltoall_node_aware(lc, send.view(), recv.view(), kBlock,
                                       {});
    EXPECT_TRUE(test::check_recv(recv, world.rank(), p, kBlock));

    Buffer sum = Buffer::real(sizeof(std::int64_t));
    sum.typed<std::int64_t>()[0] = world.rank();
    co_await coll::allreduce_node_aware(lc, sum.view(),
                                        coll::sum_combiner<std::int64_t>());
    EXPECT_EQ(sum.typed<std::int64_t>()[0],
              static_cast<std::int64_t>(p) * (p - 1) / 2);

    Buffer one = Buffer::real(4);
    one.typed<int>()[0] = world.rank() * 3;
    Buffer all = Buffer::real(4 * p);
    co_await coll::allgather_locality_aware(lc, one.view(), all.view());
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all.typed<int>()[r], r * 3);
    }

    test::fill_send(send, world.rank(), p, kBlock);
    co_await coll::alltoall_hierarchical(lc, send.view(), recv.view(), kBlock,
                                         {});
    EXPECT_TRUE(test::check_recv(recv, world.rank(), p, kBlock));
  });
}

TEST(Sequences, DifferentAlgorithmsBackToBackOnWorld) {
  const int p = 10;
  constexpr std::size_t kBlock = 24;
  test::run_smp(p, [&](Comm& world) -> Task<void> {
    Buffer send = Buffer::real(kBlock * p);
    Buffer recv = Buffer::real(kBlock * p);
    for (coll::Algo a :
         {coll::Algo::kPairwiseDirect, coll::Algo::kBruckDirect,
          coll::Algo::kNonblockingDirect, coll::Algo::kBatchedDirect,
          coll::Algo::kBruckDirect, coll::Algo::kPairwiseDirect}) {
      test::fill_send(send, world.rank(), p, kBlock);
      co_await coll::run_alltoall(a, world, nullptr, send.view(), recv.view(),
                                  kBlock, {});
      EXPECT_TRUE(test::check_recv(recv, world.rank(), p, kBlock))
          << coll::algo_name(a);
    }
  });
}

TEST(Sequences, BarriersBetweenPhasesDoNotAbsorbMessages) {
  // Interleave barriers with point-to-point on the same comm: barrier's
  // internal zero-byte traffic must not match user receives.
  test::run_sim_flat(4, [](Comm& c) -> Task<void> {
    Buffer b = Buffer::real(4);
    const int peer = (c.rank() + 1) % c.size();
    const int from = (c.rank() + c.size() - 1) % c.size();
    for (int i = 0; i < 3; ++i) {
      b.typed<int>()[0] = c.rank() * 10 + i;
      rt::Request r = c.irecv(b.view(), from, 5);
      co_await rt::barrier(c);
      Buffer out = Buffer::real(4);
      out.typed<int>()[0] = c.rank() * 10 + i;
      co_await c.send(out.view(), peer, 5);
      co_await c.wait(r);
      EXPECT_EQ(b.typed<int>()[0], from * 10 + i);
      co_await rt::barrier(c);
    }
  });
}

TEST(Sequences, SimVirtualTimeMonotoneAcrossCollectives) {
  const topo::Machine machine = topo::generic(2, 4);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    LocalityComms lc = rt::build_locality_comms(world, machine, 2, false);
    Buffer send = Buffer::real(8 * world.size());
    Buffer recv = Buffer::real(8 * world.size());
    double prev = world.now();
    for (int rep = 0; rep < 3; ++rep) {
      co_await coll::alltoall_node_aware(lc, send.view(), recv.view(), 8, {});
      const double now = world.now();
      EXPECT_GT(now, prev);
      prev = now;
    }
  });
}

}  // namespace
}  // namespace mca2a
