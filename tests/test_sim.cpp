/// Tests for the discrete-event simulator: point-to-point semantics,
/// matching rules, virtual time properties, resources, rendezvous protocol,
/// determinism, deadlock detection, sub-communicators.

#include <gtest/gtest.h>

#include <vector>

#include "core/alltoall.hpp"
#include "model/cost.hpp"
#include "sim/event_queue.hpp"
#include "test_util.hpp"

namespace mca2a {
namespace {

using rt::Buffer;
using rt::Comm;
using rt::ConstView;
using rt::MutView;
using rt::Request;
using rt::Task;
using test::run_sim;
using test::run_sim_flat;

TEST(EventQueue, OrdersByTimeThenSequence) {
  sim::EventQueue q;
  q.push(2.0, sim::EventKind::kMsgArrival, 1);
  q.push(1.0, sim::EventKind::kMsgArrival, 2);
  q.push(1.0, sim::EventKind::kRtsArrival, 3);
  q.push(3.0, sim::EventKind::kMsgArrival, 4);
  ASSERT_EQ(q.size(), 4u);
  EXPECT_EQ(q.pop().msg, 2u);  // t=1, earlier sequence
  EXPECT_EQ(q.pop().msg, 3u);  // t=1, later sequence
  EXPECT_EQ(q.pop().msg, 1u);
  EXPECT_EQ(q.pop().msg, 4u);
  EXPECT_TRUE(q.empty());
}

TEST(SimP2P, PingPongDeliversPayload) {
  run_sim_flat(2, [](Comm& c) -> Task<void> {
    Buffer buf = Buffer::real(8);
    if (c.rank() == 0) {
      for (int i = 0; i < 8; ++i) buf.data()[i] = static_cast<std::byte>(i);
      co_await c.send(buf.view(), 1, 7);
    } else {
      co_await c.recv(buf.view(), 0, 7);
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(buf.data()[i], static_cast<std::byte>(i));
      }
      EXPECT_GT(c.now(), 0.0);
    }
  });
}

TEST(SimP2P, TagsSelectMessages) {
  run_sim_flat(2, [](Comm& c) -> Task<void> {
    Buffer a = Buffer::real(1);
    Buffer b = Buffer::real(1);
    if (c.rank() == 0) {
      a.data()[0] = std::byte{1};
      b.data()[0] = std::byte{2};
      co_await c.send(a.view(), 1, 10);
      co_await c.send(b.view(), 1, 20);
    } else {
      // Receive in reverse tag order; matching must be by tag, not arrival.
      co_await c.recv(b.view(), 0, 20);
      co_await c.recv(a.view(), 0, 10);
      EXPECT_EQ(a.data()[0], std::byte{1});
      EXPECT_EQ(b.data()[0], std::byte{2});
    }
  });
}

TEST(SimP2P, AnySourceReceives) {
  run_sim_flat(3, [](Comm& c) -> Task<void> {
    Buffer buf = Buffer::real(4);
    if (c.rank() != 0) {
      buf.typed<int>()[0] = c.rank();
      co_await c.send(buf.view(), 0, 5);
    } else {
      int seen = 0;
      for (int i = 0; i < 2; ++i) {
        co_await c.recv(buf.view(), rt::kAnySource, 5);
        seen += buf.typed<int>()[0];
      }
      EXPECT_EQ(seen, 3);  // ranks 1 and 2
    }
  });
}

TEST(SimP2P, AnyTagReceives) {
  run_sim_flat(2, [](Comm& c) -> Task<void> {
    Buffer buf = Buffer::real(1);
    if (c.rank() == 0) {
      buf.data()[0] = std::byte{9};
      co_await c.send(buf.view(), 1, 1234);
    } else {
      co_await c.recv(buf.view(), 0, rt::kAnyTag);
      EXPECT_EQ(buf.data()[0], std::byte{9});
    }
  });
}

TEST(SimP2P, PairNonOvertaking) {
  // Two same-tag messages must arrive in send order.
  run_sim_flat(2, [](Comm& c) -> Task<void> {
    Buffer a = Buffer::real(1);
    Buffer b = Buffer::real(1);
    if (c.rank() == 0) {
      a.data()[0] = std::byte{1};
      b.data()[0] = std::byte{2};
      co_await c.send(a.view(), 1, 3);
      co_await c.send(b.view(), 1, 3);
    } else {
      co_await c.recv(a.view(), 0, 3);
      co_await c.recv(b.view(), 0, 3);
      EXPECT_EQ(a.data()[0], std::byte{1});
      EXPECT_EQ(b.data()[0], std::byte{2});
    }
  });
}

TEST(SimP2P, UnexpectedThenPostedBothWork) {
  // Rank 1 receives late (unexpected path) then early (posted path).
  run_sim_flat(2, [](Comm& c) -> Task<void> {
    Buffer buf = Buffer::real(1);
    if (c.rank() == 0) {
      buf.data()[0] = std::byte{5};
      co_await c.send(buf.view(), 1, 1);
      buf.data()[0] = std::byte{6};
      co_await c.send(buf.view(), 1, 2);
    } else {
      Request r2 = c.irecv(buf.view(), 0, 2);
      co_await c.wait(r2);  // arrives second but posted first
      EXPECT_EQ(buf.data()[0], std::byte{6});
      Buffer other = Buffer::real(1);
      co_await c.recv(other.view(), 0, 1);  // already unexpected
      EXPECT_EQ(other.data()[0], std::byte{5});
    }
  });
}

TEST(SimP2P, ZeroByteMessages) {
  run_sim_flat(2, [](Comm& c) -> Task<void> {
    if (c.rank() == 0) {
      co_await c.send(ConstView{}, 1, 0);
    } else {
      co_await c.recv(MutView{}, 0, 0);
    }
  });
}

TEST(SimP2P, TruncationThrows) {
  EXPECT_THROW(run_sim_flat(2,
                            [](Comm& c) -> Task<void> {
                              Buffer big = Buffer::real(16);
                              Buffer small = Buffer::real(8);
                              if (c.rank() == 0) {
                                co_await c.send(big.view(), 1, 0);
                              } else {
                                co_await c.recv(small.view(), 0, 0);
                              }
                            }),
               std::runtime_error);
}

TEST(SimP2P, InvalidDestinationThrows) {
  EXPECT_THROW(run_sim_flat(2,
                            [](Comm& c) -> Task<void> {
                              if (c.rank() == 0) {
                                co_await c.send(ConstView{}, 7, 0);
                              }
                              co_return;
                            }),
               std::out_of_range);
}

TEST(SimP2P, StaleRequestThrows) {
  EXPECT_THROW(run_sim_flat(2,
                            [](Comm& c) -> Task<void> {
                              Buffer b = Buffer::real(1);
                              if (c.rank() == 0) {
                                co_await c.send(b.view(), 1, 0);
                              } else {
                                Request r = c.irecv(b.view(), 0, 0);
                                co_await c.wait(r);
                                co_await c.wait(r);  // already released
                              }
                            }),
               std::logic_error);
}

TEST(SimP2P, DeadlockDetected) {
  try {
    run_sim_flat(2, [](Comm& c) -> Task<void> {
      Buffer b = Buffer::real(1);
      co_await c.recv(b.view(), 1 - c.rank(), 0);  // nobody sends
    });
    FAIL() << "expected SimDeadlockError";
  } catch (const sim::SimDeadlockError& e) {
    EXPECT_EQ(e.stuck_ranks(), 2);
  }
}

TEST(SimTime, ClockAdvancesWithLatency) {
  const model::NetParams net = model::test_params();
  std::vector<double> done(2, 0.0);
  run_sim(
      topo::generic(2, 1),  // two nodes, network level
      [&](Comm& c) -> Task<void> {
        Buffer b = Buffer::real(100);
        if (c.rank() == 0) {
          co_await c.send(b.view(), 1, 0);
        } else {
          co_await c.recv(b.view(), 0, 0);
        }
        done[c.rank()] = c.now();
      },
      net);
  // Receiver finishes after at least wire alpha + 100 bytes of beta.
  EXPECT_GE(done[1], net.at(topo::Level::kNetwork).alpha +
                         100 * net.at(topo::Level::kNetwork).beta);
  // Sender completes at injection, before the receiver.
  EXPECT_LT(done[0], done[1]);
}

TEST(SimTime, IntraNodeCheaperThanInterNode) {
  auto one_hop = [&](const topo::Machine& m) {
    std::vector<double> t(m.total_ranks(), 0.0);
    run_sim(m, [&](Comm& c) -> Task<void> {
      Buffer b = Buffer::real(64);
      if (c.rank() == 0) {
        co_await c.send(b.view(), 1, 0);
      } else if (c.rank() == 1) {
        co_await c.recv(b.view(), 0, 0);
      }
      t[c.rank()] = c.now();
    });
    return t[1];
  };
  const double intra = one_hop(topo::generic(1, 2));
  const double inter = one_hop(topo::generic(2, 1));
  EXPECT_LT(intra, inter);
}

TEST(SimTime, NicSerializesConcurrentSenders) {
  // Many senders on one node to distinct receivers: the shared NIC must
  // serialize, so doubling the senders roughly doubles completion time.
  auto finish_time = [&](int senders) {
    topo::MachineDesc d;
    d.name = "t";
    d.nodes = 2;
    d.cores_per_numa = senders;
    double latest = 0.0;
    std::vector<double> t(2 * senders, 0.0);
    run_sim(topo::Machine(d), [&, senders](Comm& c) -> Task<void> {
      Buffer b = Buffer::real(1 << 16);
      if (c.rank() < senders) {
        co_await c.send(b.view(), senders + c.rank(), 0);
      } else {
        co_await c.recv(b.view(), c.rank() - senders, 0);
      }
      t[c.rank()] = c.now();
    });
    for (double v : t) latest = std::max(latest, v);
    return latest;
  };
  const double t4 = finish_time(4);
  const double t8 = finish_time(8);
  // Four extra messages cost exactly four more NIC serialization periods
  // (constant wire latency cancels in the difference).
  const model::NetParams net = model::test_params();
  const double period = net.nic_msg_overhead + (1 << 16) * net.nic_inject_beta;
  EXPECT_NEAR(t8 - t4, 4 * period, 0.5 * period);
  EXPECT_GT(t8, t4 * 1.4);
}

TEST(SimTime, RendezvousWaitsForReceiver) {
  // A message above the eager threshold cannot complete before the receive
  // is posted; an eager one can.
  model::NetParams net = model::test_params();
  net.eager_threshold = 1024;
  const std::size_t big = 4096;
  std::vector<double> send_done(2, 0.0);
  run_sim(
      topo::generic(2, 1),
      [&](Comm& c) -> Task<void> {
        Buffer b = Buffer::real(big);
        if (c.rank() == 0) {
          Request r = c.isend(b.view(), 1, 0);
          co_await c.wait(r);
          send_done[0] = c.now();
        } else {
          // Delay posting the receive by doing unrelated local "work".
          c.charge_copy(100 * 1000 * 1000);  // 10ms at 1e-10 s/B
          co_await c.recv(b.view(), 0, 0);
        }
      },
      net);
  // Sender had to wait ~10ms for the CTS.
  EXPECT_GT(send_done[0], 5e-3);
}

TEST(SimTime, EagerSendCompletesWithoutReceiver) {
  model::NetParams net = model::test_params();
  net.eager_threshold = SIZE_MAX;
  std::vector<double> send_done(2, 0.0);
  run_sim(
      topo::generic(2, 1),
      [&](Comm& c) -> Task<void> {
        Buffer b = Buffer::real(4096);
        if (c.rank() == 0) {
          Request r = c.isend(b.view(), 1, 0);
          co_await c.wait(r);
          send_done[0] = c.now();
        } else {
          c.charge_copy(100 * 1000 * 1000);
          co_await c.recv(b.view(), 0, 0);
        }
      },
      net);
  EXPECT_LT(send_done[0], 1e-3);  // completed long before the receiver posted
}

TEST(SimDeterminism, SameSeedSameResult) {
  model::NetParams net = model::test_params();
  net.noise_sigma = 0.1;
  auto run_once = [&](std::uint64_t seed) {
    return run_sim(
        topo::generic(2, 4),
        [](Comm& c) -> Task<void> {
          Buffer s = Buffer::real(64 * c.size());
          Buffer r = Buffer::real(64 * c.size());
          co_await coll::alltoall_pairwise(c, s.view(), r.view(), 64);
        },
        net, /*carry_data=*/true, seed);
  };
  EXPECT_DOUBLE_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(SimDeterminism, VirtualAndRealPayloadsSameTime) {
  auto run_once = [&](bool carry) {
    return run_sim(
        topo::generic_hier(2, 2, 1, 2),
        [](Comm& c) -> Task<void> {
          Buffer s = c.alloc_buffer(128 * c.size());
          Buffer r = c.alloc_buffer(128 * c.size());
          co_await coll::alltoall_nonblocking(c, s.view(), r.view(), 128);
        },
        model::test_params(), carry);
  };
  EXPECT_DOUBLE_EQ(run_once(true), run_once(false));
}

TEST(SimSubcomm, SplitCommRoutesIndependently) {
  run_sim_flat(4, [](Comm& c) -> Task<void> {
    // Evens and odds form separate subcomms; ranks renumbered 0..1.
    std::vector<int> members = c.rank() % 2 == 0 ? std::vector<int>{0, 2}
                                                 : std::vector<int>{1, 3};
    auto sub = c.create_subcomm(members);
    EXPECT_EQ(sub->size(), 2);
    EXPECT_EQ(sub->rank(), c.rank() / 2);
    Buffer b = Buffer::real(4);
    if (sub->rank() == 0) {
      b.typed<int>()[0] = c.rank();
      co_await sub->send(b.view(), 1, 0);
    } else {
      co_await sub->recv(b.view(), 0, 0);
      EXPECT_EQ(b.typed<int>()[0], c.rank() - 2);  // peer in my parity class
    }
  });
}

TEST(SimSubcomm, NotAMemberThrows) {
  EXPECT_THROW(run_sim_flat(2,
                            [](Comm& c) -> Task<void> {
                              std::vector<int> members{1 - c.rank()};
                              auto sub = c.create_subcomm(members);
                              (void)sub;
                              co_return;
                            }),
               std::invalid_argument);
}

TEST(SimStats, CountsMessages) {
  sim::ClusterConfig cfg;
  cfg.machine = topo::generic(1, 4).desc();
  cfg.net = model::test_params();
  sim::Cluster cluster(cfg);
  cluster.run([](Comm& c) -> Task<void> {
    Buffer s = Buffer::real(8 * c.size());
    Buffer r = Buffer::real(8 * c.size());
    co_await coll::alltoall_nonblocking(c, s.view(), r.view(), 8);
  });
  // 4 ranks x 3 peers = 12 payload messages.
  EXPECT_EQ(cluster.messages_sent(), 12u);
}

}  // namespace
}  // namespace mca2a
