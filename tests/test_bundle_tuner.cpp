/// Tests for the locality communicator bundle (the exact orderings the
/// algorithms' index arithmetic relies on), the analytic tuner, and the
/// benchmark harness plumbing (sweep, figure, table).

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/tuner.hpp"
#include "harness/figure.hpp"
#include "harness/sweep.hpp"
#include "harness/table.hpp"
#include "runtime/comm_bundle.hpp"
#include "test_util.hpp"

namespace mca2a {
namespace {

using rt::Comm;
using rt::LocalityComms;
using rt::Task;

// ---------------------------------------------------------------------------
// Locality bundle
// ---------------------------------------------------------------------------

TEST(Bundle, IndicesAndSizes) {
  // 2 nodes x 8 ranks, groups of 4: regions tile world ranks consecutively.
  const topo::Machine machine = topo::generic(2, 8);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    LocalityComms lc = rt::build_locality_comms(world, machine, 4, true);
    const int me = world.rank();
    EXPECT_EQ(lc.groups_per_node, 2);
    EXPECT_EQ(lc.my_node, me / 8);
    EXPECT_EQ(lc.my_local, me % 8);
    EXPECT_EQ(lc.my_group, (me % 8) / 4);
    EXPECT_EQ(lc.my_pos, me % 4);
    EXPECT_EQ(lc.my_region, lc.my_node * 2 + lc.my_group);
    EXPECT_EQ(lc.is_leader, me % 4 == 0);

    EXPECT_EQ(lc.node_comm->size(), 8);
    EXPECT_EQ(lc.node_comm->rank(), lc.my_local);
    EXPECT_EQ(lc.local_comm->size(), 4);
    EXPECT_EQ(lc.local_comm->rank(), lc.my_pos);
    EXPECT_EQ(lc.group_cross->size(), 4);  // nodes * groups
    EXPECT_EQ(lc.group_cross->rank(), lc.my_region);
    if (lc.is_leader) {
      EXPECT_NE(lc.leader_cross, nullptr);
      EXPECT_NE(lc.leaders_node, nullptr);
      if (!lc.leader_cross || !lc.leaders_node) {
        co_return;
      }
      EXPECT_EQ(lc.leader_cross->size(), 2);  // nodes
      EXPECT_EQ(lc.leader_cross->rank(), lc.my_node);
      EXPECT_EQ(lc.leaders_node->size(), 2);  // groups per node
      EXPECT_EQ(lc.leaders_node->rank(), lc.my_group);
    } else {
      EXPECT_EQ(lc.leader_cross, nullptr);
      EXPECT_EQ(lc.leaders_node, nullptr);
    }
    co_return;
  });
}

TEST(Bundle, GroupCrossRoutesBetweenRegions) {
  // Member j of my group_cross must be the rank at my in-group position in
  // region j. Verify with a ring: send my world rank to the next region,
  // receive from the previous one, and check the sender's identity.
  const topo::Machine machine = topo::generic(2, 4);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    LocalityComms lc = rt::build_locality_comms(world, machine, 2, false);
    const int nreg = lc.group_cross->size();
    const int next = (lc.my_region + 1) % nreg;
    const int prev = (lc.my_region - 1 + nreg) % nreg;
    rt::Buffer out = rt::Buffer::real(4);
    rt::Buffer in = rt::Buffer::real(4);
    out.typed<int>()[0] = world.rank();
    co_await lc.group_cross->sendrecv(out.view(), next, 9, in.view(), prev, 9);
    const int expect_from = machine.world_rank(
        prev / lc.groups_per_node,
        (prev % lc.groups_per_node) * lc.group_size + lc.my_pos);
    EXPECT_EQ(in.typed<int>()[0], expect_from);
  });
}

// Regression for the create_subcomm contract (runtime/comm.hpp): `members`
// need not be sorted, and the new communicator numbers its ranks by position
// in the list — member i becomes rank i — on both backends.
Task<void> subcomm_order_body(Comm& world) {
  const std::vector<int> members = {3, 1, 2, 0};
  std::size_t my_idx = 0;
  while (members[my_idx] != world.rank()) {
    ++my_idx;
  }
  std::unique_ptr<Comm> sub = world.create_subcomm(members);
  EXPECT_EQ(sub->size(), 4);
  EXPECT_EQ(sub->rank(), static_cast<int>(my_idx));

  // Route through the subcomm to prove the numbering is live, not just
  // reported: sub rank i sends its world rank to sub rank (i+1)%4, which
  // must see the world rank of members[i].
  const int next = (sub->rank() + 1) % sub->size();
  const int prev = (sub->rank() + sub->size() - 1) % sub->size();
  rt::Buffer out = rt::Buffer::real(sizeof(int));
  rt::Buffer in = rt::Buffer::real(sizeof(int));
  out.typed<int>()[0] = world.rank();
  co_await sub->sendrecv(out.view(), next, 11, in.view(), prev, 11);
  EXPECT_EQ(in.typed<int>()[0], members[prev]);
}

TEST(Bundle, SubcommRanksFollowMemberOrderSim) {
  test::run_sim_flat(4, subcomm_order_body);
}

TEST(Bundle, SubcommRanksFollowMemberOrderSmp) {
  test::run_smp(4, subcomm_order_body);
}

TEST(Bundle, RejectsMismatchedWorld) {
  const topo::Machine machine = topo::generic(2, 4);
  test::run_sim_flat(4, [&](Comm& world) -> Task<void> {
    EXPECT_THROW(rt::build_locality_comms(world, machine, 2, false),
                 std::invalid_argument);
    co_return;
  });
}

TEST(Bundle, RejectsNonDividingGroupSize) {
  const topo::Machine machine = topo::generic(2, 4);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    EXPECT_THROW(rt::build_locality_comms(world, machine, 3, false),
                 std::invalid_argument);
    co_return;
  });
}

// ---------------------------------------------------------------------------
// Tuner
// ---------------------------------------------------------------------------

TEST(Tuner, PredictionsArePositiveAndFinite) {
  const topo::Machine machine = topo::dane(8);
  const model::NetParams net = model::omni_path();
  for (int a = 0; a < coll::kNumAlgos; ++a) {
    const double t = coll::predict_alltoall_seconds(
        static_cast<coll::Algo>(a), machine, net, 256, 4);
    EXPECT_GT(t, 0.0) << coll::algo_name(static_cast<coll::Algo>(a));
    EXPECT_TRUE(std::isfinite(t));
  }
}

TEST(Tuner, PredictionMonotoneInBlockSize) {
  const topo::Machine machine = topo::dane(8);
  const model::NetParams net = model::omni_path();
  for (coll::Algo a : {coll::Algo::kNodeAware, coll::Algo::kHierarchical,
                       coll::Algo::kMultileaderNodeAware}) {
    double prev = 0.0;
    for (std::size_t s : {4, 64, 1024, 4096}) {
      const double t = coll::predict_alltoall_seconds(a, machine, net, s, 4);
      EXPECT_GE(t, prev) << coll::algo_name(a) << " at " << s;
      prev = t;
    }
  }
}

TEST(Tuner, SelectsLocalityFamilyAtSmallBlocks) {
  const topo::Machine machine = topo::dane(32);
  const coll::Choice c =
      coll::select_algorithm(machine, model::omni_path(), 4);
  // Any of the aggregating algorithms is acceptable; the flat direct ones
  // (p-1 network messages per rank) must not win at 4 B on 3584 ranks.
  EXPECT_NE(c.algo, coll::Algo::kPairwiseDirect);
  EXPECT_NE(c.algo, coll::Algo::kNonblockingDirect);
}

TEST(Tuner, SelectionAgreesWithSimulationAtExtremes) {
  // The tuner's pick must be within 2x of the simulated-best of the main
  // algorithm portfolio at both ends of the size sweep.
  const topo::Machine machine = topo::generic_hier(8, 2, 2, 4);  // 8x16
  const model::NetParams net = model::omni_path();
  for (std::size_t block : {std::size_t{4}, std::size_t{4096}}) {
    auto simulate = [&](coll::Algo algo, int g) {
      bench::RunSpec spec;
      spec.machine = machine.desc();
      spec.net = net;
      spec.algo = algo;
      spec.group_size = g;
      spec.block = block;
      return bench::run_sim(spec).seconds;
    };
    const coll::Choice pick = coll::select_algorithm(machine, net, block);
    const double picked = simulate(pick.algo, pick.group_size);
    double best = picked;
    for (auto [a, g] : {std::pair{coll::Algo::kSystemMpi, 0},
                        {coll::Algo::kNodeAware, 0},
                        {coll::Algo::kLocalityAware, 4},
                        {coll::Algo::kMultileaderNodeAware, 4},
                        {coll::Algo::kHierarchical, 0}}) {
      best = std::min(best, simulate(a, g));
    }
    EXPECT_LE(picked, best * 2.0) << "block " << block;
  }
}

TEST(Tuner, RejectsBadGroupSize) {
  const topo::Machine machine = topo::dane(2);
  EXPECT_THROW(coll::predict_alltoall_seconds(coll::Algo::kLocalityAware,
                                              machine, model::omni_path(),
                                              64, 5),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

TEST(Harness, RunSimProducesConsistentResult) {
  bench::RunSpec spec;
  spec.machine = topo::generic(2, 4).desc();
  spec.net = model::test_params();
  spec.algo = coll::Algo::kPairwiseDirect;
  spec.block = 64;
  const bench::RunResult a = bench::run_sim(spec);
  const bench::RunResult b = bench::run_sim(spec);
  EXPECT_GT(a.seconds, 0.0);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);  // deterministic
  EXPECT_EQ(a.messages, b.messages);
}

TEST(Harness, RepsTakeMinimum) {
  bench::RunSpec spec;
  spec.machine = topo::generic(2, 4).desc();
  spec.net = model::test_params();
  spec.net.noise_sigma = 0.2;
  spec.algo = coll::Algo::kNonblockingDirect;
  spec.block = 64;
  spec.reps = 5;
  const bench::RunResult multi = bench::run_sim(spec);
  spec.reps = 1;
  const bench::RunResult one = bench::run_sim(spec);
  // Min over more noisy repetitions can only be <= a single draw from the
  // same seed (rep 1 uses the same RNG stream start).
  EXPECT_LE(multi.seconds, one.seconds + 1e-12);
}

TEST(Harness, TraceCollectsPhases) {
  bench::RunSpec spec;
  spec.machine = topo::generic(2, 4).desc();
  spec.net = model::test_params();
  spec.algo = coll::Algo::kNodeAware;
  spec.block = 64;
  spec.collect_trace = true;
  const bench::RunResult r = bench::run_sim(spec);
  EXPECT_GT(r.phase_seconds[static_cast<int>(coll::Phase::kInterA2A)], 0.0);
  EXPECT_GT(r.phase_seconds[static_cast<int>(coll::Phase::kIntraA2A)], 0.0);
  EXPECT_GT(r.phase_seconds[static_cast<int>(coll::Phase::kPack)], 0.0);
  EXPECT_EQ(r.phase_seconds[static_cast<int>(coll::Phase::kGather)], 0.0);
}

TEST(Harness, FigurePrintsAllSeriesAndPoints) {
  bench::Figure fig("t", "Title", "X");
  fig.add("A", 1, 0.001);
  fig.add("B", 1, 0.002);
  fig.add("A", 2, 0.003);
  std::ostringstream os;
  fig.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("A"), std::string::npos);
  EXPECT_NE(s.find("1 ms"), std::string::npos);
  // Missing (B, 2) renders as '-'.
  EXPECT_NE(s.find('-'), std::string::npos);
}

TEST(Harness, FigureAddOverwritesDuplicates) {
  bench::Figure fig("t", "Title", "X");
  fig.add("A", 1, 0.5);
  fig.add("A", 1, 0.25);
  std::ostringstream os;
  fig.write_csv(os);
  EXPECT_NE(os.str().find("0.25"), std::string::npos);
  EXPECT_EQ(os.str().find("0.5,"), std::string::npos);
}

TEST(Harness, CsvRoundTripsValues) {
  bench::Figure fig("t", "Title", "X");
  fig.add("Algo One", 4, 1.5e-3);
  fig.add("Algo Two", 4, 2.5e-3);
  std::ostringstream os;
  fig.write_csv(os);
  EXPECT_EQ(os.str(), "x,Algo One,Algo Two\n4,0.0015,0.0025\n");
}

TEST(Harness, FormatTimeUnits) {
  EXPECT_EQ(bench::format_time(1.5), "1.5 s");
  EXPECT_EQ(bench::format_time(2.5e-3), "2.5 ms");
  EXPECT_EQ(bench::format_time(3.25e-6), "3.25 us");
  EXPECT_EQ(bench::format_time(5e-9), "5 ns");
}

TEST(Harness, TableAlignsColumns) {
  std::ostringstream os;
  bench::print_table(os, {"a", "long-header"}, {{"xx", "y"}});
  const std::string s = os.str();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("--"), std::string::npos);
  EXPECT_NE(s.find("xx"), std::string::npos);
}

}  // namespace
}  // namespace mca2a
