/// Tests for the observability layer (src/obs/): metrics registry
/// instruments (counter/gauge/histogram semantics, quantiles, snapshots,
/// JSON serialization), flight-recorder trace buffers (begin/end balance
/// under overflow, Span RAII), Chrome-trace JSON export well-formedness
/// (validated with a strict in-test JSON parser: balanced B/E pairs and
/// monotone timestamps per (pid, tid) lane), phase-span presence for the
/// locality algorithms on both backends, metric exactness against known
/// workloads (plan cache, tag streams, per-level sim bytes,
/// bytes-by-algorithm), the disabled-path determinism pin (tracing on vs.
/// off leaves simulated virtual time bit-for-bit identical), warm-execute
/// allocation flatness including the new ScratchArena high-water accessor,
/// and the RunResult percentile helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "autotune/selector.hpp"
#include "coll_ext/op_desc.hpp"
#include "core/alltoall.hpp"
#include "harness/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/cache.hpp"
#include "plan/plan.hpp"
#include "runtime/collectives.hpp"
#include "test_util.hpp"

namespace mca2a {
namespace {

using rt::Buffer;
using rt::Comm;
using rt::Task;

// ---------------------------------------------------------------------------
// Strict minimal JSON parser (validation only — no unchecked skipping)
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  /// Parses the whole input as one JSON value; nullopt on any violation.
  std::optional<JsonValue> parse() {
    JsonValue v;
    if (!value(v)) {
      return std::nullopt;
    }
    ws();
    if (pos_ != s_.size()) {
      return std::nullopt;  // trailing garbage
    }
    return v;
  }

 private:
  void ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool lit(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }
  bool string(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
          out += '?';  // code point value irrelevant for validation
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' ||
                   e == 'f' || e == 'n' || e == 'r' || e == 't') {
          out += e;
        } else {
          return false;
        }
      } else {
        out += c;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }
  bool number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      ++pos_;
    }
    std::size_t digits = 0;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) {
      return false;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      digits = 0;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        ++digits;
      }
      if (digits == 0) {
        return false;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) {
        ++pos_;
      }
      digits = 0;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        ++digits;
      }
      if (digits == 0) {
        return false;
      }
    }
    out = std::stod(std::string(s_.substr(start, pos_ - start)));
    return true;
  }
  bool value(JsonValue& v) {
    ws();
    if (pos_ >= s_.size()) {
      return false;
    }
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      v.type = JsonValue::Type::kObject;
      ws();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        ws();
        std::string key;
        if (!string(key)) {
          return false;
        }
        ws();
        if (pos_ >= s_.size() || s_[pos_] != ':') {
          return false;
        }
        ++pos_;
        JsonValue child;
        if (!value(child)) {
          return false;
        }
        v.object.emplace(std::move(key), std::move(child));
        ws();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < s_.size() && s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      v.type = JsonValue::Type::kArray;
      ws();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue child;
        if (!value(child)) {
          return false;
        }
        v.array.push_back(std::move(child));
        ws();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < s_.size() && s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      v.type = JsonValue::Type::kString;
      return string(v.str);
    }
    if (c == 't') {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return lit("true");
    }
    if (c == 'f') {
      v.type = JsonValue::Type::kBool;
      v.boolean = false;
      return lit("false");
    }
    if (c == 'n') {
      v.type = JsonValue::Type::kNull;
      return lit("null");
    }
    v.type = JsonValue::Type::kNumber;
    return number(v.number);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

/// Balanced B/E pairs and monotone timestamps per (pid, tid) lane, as
/// tools/check_trace.py checks in CI.
void validate_trace_json(const std::string& text) {
  const std::optional<JsonValue> doc = JsonParser(text).parse();
  ASSERT_TRUE(doc.has_value()) << "trace is not valid JSON";
  ASSERT_EQ(doc->type, JsonValue::Type::kObject);
  const auto events_it = doc->object.find("traceEvents");
  ASSERT_NE(events_it, doc->object.end());
  ASSERT_EQ(events_it->second.type, JsonValue::Type::kArray);

  std::map<std::pair<double, double>, int> depth;
  std::map<std::pair<double, double>, double> last_ts;
  for (const JsonValue& ev : events_it->second.array) {
    ASSERT_EQ(ev.type, JsonValue::Type::kObject);
    const auto ph_it = ev.object.find("ph");
    ASSERT_NE(ph_it, ev.object.end());
    const std::string& ph = ph_it->second.str;
    if (ph == "M") {
      continue;
    }
    if (ph == "s" || ph == "f") {
      // Flow arrows: both ends carry an id; the finish binds to its
      // enclosing slice. Their timestamps live inside the surrounding
      // span, so they are exempt from the lane depth accounting.
      ASSERT_NE(ev.object.find("id"), ev.object.end());
      ASSERT_NE(ev.object.find("name"), ev.object.end());
      if (ph == "f") {
        const auto bp_it = ev.object.find("bp");
        ASSERT_NE(bp_it, ev.object.end());
        EXPECT_EQ(bp_it->second.str, "e");
      }
      continue;
    }
    ASSERT_TRUE(ph == "B" || ph == "E" || ph == "i") << "ph=" << ph;
    const auto pid_it = ev.object.find("pid");
    const auto tid_it = ev.object.find("tid");
    const auto ts_it = ev.object.find("ts");
    ASSERT_NE(pid_it, ev.object.end());
    ASSERT_NE(tid_it, ev.object.end());
    ASSERT_NE(ts_it, ev.object.end());
    const std::pair<double, double> lane{pid_it->second.number,
                                         tid_it->second.number};
    const double ts = ts_it->second.number;
    const auto prev = last_ts.find(lane);
    if (prev != last_ts.end()) {
      EXPECT_GE(ts, prev->second) << "timestamps regressed on a lane";
    }
    last_ts[lane] = ts;
    if (ph == "B") {
      ASSERT_NE(ev.object.find("name"), ev.object.end());
      ++depth[lane];
    } else if (ph == "E") {
      ASSERT_GT(depth[lane], 0) << "E without matching B";
      --depth[lane];
    }
  }
  for (const auto& [lane, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span on lane (" << lane.first << ", "
                    << lane.second << ")";
  }
}

/// Counts events with `name` in a stream's in-memory buffer.
int count_events(const obs::TraceBuffer& tb, std::string_view name,
                 obs::EventType type) {
  int n = 0;
  for (const obs::TraceEvent& e : tb.events()) {
    if (e.type == type && e.name == name) {
      ++n;
    }
  }
  return n;
}

// ---------------------------------------------------------------------------
// Metrics instruments
// ---------------------------------------------------------------------------

TEST(Metrics, CounterGaugeBasics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("t.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Find-or-create returns the same instrument.
  EXPECT_EQ(&reg.counter("t.counter"), &c);
  EXPECT_EQ(reg.counter_value("t.counter"), 42u);
  EXPECT_EQ(reg.counter_value("never.registered"), 0u);

  obs::Gauge& g = reg.gauge("t.gauge");
  g.set(7);
  g.update_max(3);   // below: no change
  EXPECT_EQ(g.value(), 7);
  g.update_max(19);  // above: raises
  EXPECT_EQ(g.value(), 19);
  g.set(-2);         // set is unconditional
  EXPECT_EQ(g.value(), -2);
}

TEST(Metrics, HistogramBucketsAndQuantiles) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3);
  EXPECT_EQ(obs::Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_bound(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_bound(2), 3u);
  EXPECT_EQ(obs::Histogram::bucket_bound(3), 7u);

  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("t.hist");
  for (std::uint64_t v = 1; v <= 100; ++v) {
    h.observe(v);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  // The 50th sample is 50 → bucket [32, 64), bound 63. The 99th is 99 →
  // bucket [64, 128), bound 127.
  EXPECT_EQ(h.quantile_bound(0.50), 63u);
  EXPECT_EQ(h.quantile_bound(0.99), 127u);
  EXPECT_EQ(h.quantile_bound(0.0), 1u);  // minimum's bucket bound
  EXPECT_EQ(reg.histogram("t.empty").quantile_bound(0.5), 0u);
}

TEST(Metrics, SnapshotAndJsonRoundTrip) {
  obs::MetricsRegistry reg;
  reg.counter("b.count").add(3);
  reg.counter("a.count").add(1);
  reg.gauge("g.level").set(-5);
  reg.histogram("h.lat").observe(10);

  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  // Sorted by name.
  EXPECT_EQ(snap.counters[0].name, "a.count");
  EXPECT_EQ(snap.counters[1].name, "b.count");
  EXPECT_EQ(snap.counters[1].value, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, -5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].sum, 10u);

  std::ostringstream json;
  reg.write_json(json);
  const std::optional<JsonValue> doc = JsonParser(json.str()).parse();
  ASSERT_TRUE(doc.has_value()) << "metrics JSON invalid: " << json.str();
  const auto counters = doc->object.find("counters");
  ASSERT_NE(counters, doc->object.end());
  const auto b = counters->second.object.find("b.count");
  ASSERT_NE(b, counters->second.object.end());
  EXPECT_EQ(b->second.number, 3.0);

  reg.reset();
  EXPECT_EQ(reg.counter_value("b.count"), 0u);
  EXPECT_EQ(reg.gauge_value("g.level"), 0);
  // Registration (and cached references) survive the reset.
  EXPECT_EQ(&reg.counter("b.count"), &reg.counter("b.count"));
}

TEST(Metrics, PercentileHelperNearestRank) {
  using bench::RunResult;
  EXPECT_EQ(RunResult::percentile_of({}, 0.5), 0.0);
  EXPECT_EQ(RunResult::percentile_of({7.0}, 0.5), 7.0);
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  // Nearest rank over n=5: p50 → rank ⌈2.5⌉=3 → 3.0; p95/p99 → rank 5.
  EXPECT_EQ(RunResult::percentile_of(v, 0.50), 3.0);
  EXPECT_EQ(RunResult::percentile_of(v, 0.95), 5.0);
  EXPECT_EQ(RunResult::percentile_of(v, 0.99), 5.0);
  EXPECT_EQ(RunResult::percentile_of(v, 0.0), 1.0);
  EXPECT_EQ(RunResult::percentile_of(v, 1.0), 5.0);

  RunResult r;
  r.rep_seconds = {4.0, 2.0, 6.0, 8.0};
  EXPECT_EQ(r.p50(), 4.0);
  EXPECT_EQ(r.p95(), 8.0);
  EXPECT_EQ(r.p99(), 8.0);
}

// ---------------------------------------------------------------------------
// TraceBuffer semantics
// ---------------------------------------------------------------------------

TEST(TraceBuffer, SpanPairsBalanceUnderOverflow) {
  obs::TraceBuffer tb(4);
  {
    std::vector<obs::Span> spans;
    for (int i = 0; i < 10; ++i) {
      spans.emplace_back(&tb, "s", "t", 0);
    }
  }  // all spans close here
  // 4 begins landed; the other 6 were dropped and their ends suppressed.
  EXPECT_EQ(count_events(tb, "s", obs::EventType::kBegin), 4);
  int ends = 0;
  for (const obs::TraceEvent& e : tb.events()) {
    ends += e.type == obs::EventType::kEnd ? 1 : 0;
  }
  EXPECT_EQ(ends, 4);
  EXPECT_EQ(tb.dropped(), 6u);
}

TEST(TraceBuffer, NullBufferSpanIsInert) {
  obs::Span sp(nullptr, "x", "y", 0);
  sp.close();  // must not crash
}

TEST(TraceBuffer, InstantDroppedWhenFull) {
  obs::TraceBuffer tb(2);
  tb.instant("a", "t");
  tb.instant("b", "t");
  tb.instant("c", "t");
  EXPECT_EQ(tb.events().size(), 2u);
  EXPECT_EQ(tb.dropped(), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end traces: locality alltoall through the plan path, both backends
// ---------------------------------------------------------------------------

/// Runs a hierarchical (single-leader) alltoall through a persistent plan
/// on the given backend; `backend` must match the cluster type.
void run_locality_workload(const topo::Machine& machine, bool smp) {
  const int p = machine.total_ranks();
  const std::size_t block = 16;
  const auto body = [&](Comm& world) -> Task<void> {
    coll::AlltoallDesc d;
    d.block = block;
    d.algo = coll::Algo::kHierarchical;
    plan::CollectivePlan plan =
        plan::make_plan(world, machine, model::test_params(), d);
    Buffer send = world.alloc_buffer(block * p);
    Buffer recv = world.alloc_buffer(block * p);
    if (send.data() != nullptr) {
      test::fill_send(send, world.rank(), p, block);
    }
    co_await plan.execute(rt::ConstView(send.view()), recv.view());
    if (recv.data() != nullptr) {
      EXPECT_TRUE(test::check_recv(recv, world.rank(), p, block));
    }
  };
  if (smp) {
    test::run_smp(p, body);
  } else {
    test::run_sim(machine, body);
  }
}

TEST(TraceExport, SimLocalityAlltoallHasNestedPhaseSpans) {
  obs::TraceRecorder rec;
  obs::set_active_recorder(&rec);
  const topo::Machine machine = topo::generic(2, 4);
  run_locality_workload(machine, /*smp=*/false);
  obs::set_active_recorder(nullptr);

  for (int r = 0; r < machine.total_ranks(); ++r) {
    const obs::TraceBuffer* tb = rec.stream("sim", r);
    ASSERT_NE(tb, nullptr) << "rank " << r;
    EXPECT_EQ(tb->dropped(), 0u);
    // The collective dispatch span nests the phase spans under it; every
    // rank gathers and scatters, leaders also run the inner exchange.
    EXPECT_GE(count_events(*tb, "plan.build", obs::EventType::kBegin), 1);
    EXPECT_GE(count_events(*tb, "Hierarchical", obs::EventType::kBegin), 1);
    EXPECT_GE(count_events(*tb, "gather", obs::EventType::kBegin), 1);
    EXPECT_GE(count_events(*tb, "scatter", obs::EventType::kBegin), 1);
    const bool leader = r % 4 == 0;  // groups of ppn=4, leader at position 0
    if (leader) {
      EXPECT_GE(count_events(*tb, "inter-a2a", obs::EventType::kBegin), 1);
      EXPECT_GE(count_events(*tb, "pack", obs::EventType::kBegin), 2);
    }
    std::ostringstream os;
    rec.write_stream(os, "sim", r);
    validate_trace_json(os.str());
  }
}

TEST(TraceExport, SmpLocalityAlltoallTracesValidate) {
  obs::TraceRecorder rec;
  obs::set_active_recorder(&rec);
  const topo::Machine machine = topo::generic(2, 2);
  run_locality_workload(machine, /*smp=*/true);
  obs::set_active_recorder(nullptr);

  for (int r = 0; r < machine.total_ranks(); ++r) {
    const obs::TraceBuffer* tb = rec.stream("smp", r);
    ASSERT_NE(tb, nullptr) << "rank " << r;
    EXPECT_GE(count_events(*tb, "gather", obs::EventType::kBegin), 1);
    EXPECT_GE(count_events(*tb, "scatter", obs::EventType::kBegin), 1);
    std::ostringstream os;
    rec.write_stream(os, "smp", r);
    validate_trace_json(os.str());
  }
}

TEST(TraceExport, SessionsReuseBuffersAcrossClusters) {
  obs::TraceRecorder rec;
  obs::set_active_recorder(&rec);
  const topo::Machine machine = topo::generic(2, 2);
  run_locality_workload(machine, /*smp=*/false);
  run_locality_workload(machine, /*smp=*/false);
  obs::set_active_recorder(nullptr);

  // Two sequential clusters share the per-rank stream (two Perfetto pids
  // in one file), rather than minting new files.
  EXPECT_NE(rec.stream("sim", 0), nullptr);
  EXPECT_EQ(rec.stream("sim", 0, /*instance=*/1), nullptr);
  std::uint32_t sessions_seen = 0;
  for (const obs::TraceEvent& e : rec.stream("sim", 0)->events()) {
    sessions_seen = std::max(sessions_seen, e.session + 1);
  }
  EXPECT_GE(sessions_seen, 2u);
  std::ostringstream os;
  rec.write_stream(os, "sim", 0);
  validate_trace_json(os.str());
}

// ---------------------------------------------------------------------------
// Determinism pin: tracing must not perturb simulated time or results
// ---------------------------------------------------------------------------

TEST(TraceExport, TracingDoesNotPerturbVirtualTime) {
  const topo::Machine machine = topo::generic(2, 4);
  const auto run_once = [&] {
    double t = 0.0;
    const int p = machine.total_ranks();
    t = test::run_sim(machine, [&](Comm& world) -> Task<void> {
      coll::AlltoallDesc d;
      d.block = 64;
      d.algo = coll::Algo::kMultileaderNodeAware;
      plan::PlanOptions popts;
      popts.group_size = 2;
      plan::CollectivePlan plan =
          plan::make_plan(world, machine, model::test_params(), d, popts);
      Buffer send = world.alloc_buffer(64 * p);
      Buffer recv = world.alloc_buffer(64 * p);
      test::fill_send(send, world.rank(), p, 64);
      for (int it = 0; it < 3; ++it) {
        co_await plan.execute(rt::ConstView(send.view()), recv.view());
      }
      EXPECT_TRUE(test::check_recv(recv, world.rank(), p, 64));
    });
    return t;
  };

  const double t_off = run_once();
  obs::TraceRecorder rec;
  obs::set_active_recorder(&rec);
  const double t_on = run_once();
  obs::set_active_recorder(nullptr);
  const double t_off2 = run_once();

  // Bit-for-bit: event recording reads rank clocks, never advances them.
  EXPECT_EQ(t_off, t_on);
  EXPECT_EQ(t_off, t_off2);
}

// ---------------------------------------------------------------------------
// Metric exactness against known workloads
// ---------------------------------------------------------------------------

TEST(MetricsWiring, PlanCacheCountersMirrorPerOpStats) {
  const topo::Machine machine = topo::generic(2, 2);
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    if (world.rank() != 0) {
      co_return;
    }
    obs::MetricsRegistry& m = obs::metrics();
    const std::uint64_t hits0 = m.counter_value("plan.cache.a2a.hits");
    const std::uint64_t misses0 = m.counter_value("plan.cache.a2a.misses");
    plan::PlanCache cache(4);
    coll::AlltoallDesc d;
    d.block = 32;
    d.algo = coll::Algo::kPairwiseDirect;
    const coll::OpDesc desc{d};
    cache.get_or_create(world, machine, model::test_params(), desc, {});
    cache.get_or_create(world, machine, model::test_params(), desc, {});
    cache.get_or_create(world, machine, model::test_params(), desc, {});
    EXPECT_EQ(m.counter_value("plan.cache.a2a.misses") - misses0, 1u);
    EXPECT_EQ(m.counter_value("plan.cache.a2a.hits") - hits0, 2u);
    co_return;
  });
}

TEST(MetricsWiring, TagStreamAndLevelByteCounters) {
  obs::MetricsRegistry& m = obs::metrics();
  const std::uint64_t tags0 = m.counter_value("tags.acquired");
  const std::uint64_t net_bytes0 = m.counter_value("sim.level.network.bytes");
  const std::uint64_t net_msgs0 = m.counter_value("sim.level.network.messages");

  const topo::Machine machine = topo::generic(2, 2);
  const int p = machine.total_ranks();
  const std::size_t block = 128;
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    const int stream = world.acquire_tag_stream();
    Buffer send = world.alloc_buffer(block * p);
    Buffer recv = world.alloc_buffer(block * p);
    test::fill_send(send, world.rank(), p, block);
    coll::Options opts;
    opts.tag_stream = stream;
    co_await coll::run_alltoall(coll::Algo::kPairwiseDirect, world, nullptr,
                                rt::ConstView(send.view()), recv.view(),
                                block, opts);
    EXPECT_TRUE(test::check_recv(recv, world.rank(), p, block));
  });

  EXPECT_EQ(m.counter_value("tags.acquired") - tags0,
            static_cast<std::uint64_t>(p));
  // Pairwise direct: every cross-node (src, dst) pair moves exactly one
  // `block`-byte message over the network level. generic(2, 2): 2 nodes of
  // 2 ranks → 8 ordered cross-node pairs.
  EXPECT_EQ(m.counter_value("sim.level.network.messages") - net_msgs0, 8u);
  EXPECT_EQ(m.counter_value("sim.level.network.bytes") - net_bytes0,
            8u * block);
}

TEST(MetricsWiring, BytesByAlgorithmExact) {
  obs::MetricsRegistry& m = obs::metrics();
  const std::uint64_t bytes0 = m.counter_value("coll.bytes_by_algo.pairwise");
  const topo::Machine machine = topo::generic(1, 4);
  const int p = machine.total_ranks();
  const std::size_t block = 32;
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    Buffer send = world.alloc_buffer(block * p);
    Buffer recv = world.alloc_buffer(block * p);
    test::fill_send(send, world.rank(), p, block);
    co_await coll::run_alltoall(coll::Algo::kPairwiseDirect, world, nullptr,
                                rt::ConstView(send.view()), recv.view(),
                                block, {});
  });
  // Each of the p ranks contributes p*block bytes at dispatch.
  EXPECT_EQ(m.counter_value("coll.bytes_by_algo.pairwise") - bytes0,
            static_cast<std::uint64_t>(p) * p * block);
}

TEST(MetricsWiring, SelectorReportsExplorationFlag) {
  obs::MetricsRegistry& m = obs::metrics();
  const std::uint64_t explore0 = m.counter_value("autotune.explorations");
  const topo::Machine machine = topo::generic(2, 4);
  autotune::OnlineSelector sel(autotune::Mode::kAdapt);
  bool explored = false;
  const std::optional<coll::Choice> c = sel.choose_alltoall(
      machine, model::test_params(), 64, "sim", &explored);
  ASSERT_TRUE(c.has_value());
  // A fresh selector has zero evidence: the first choice must explore.
  EXPECT_TRUE(explored);
  EXPECT_EQ(m.counter_value("autotune.explorations") - explore0, 1u);
}

// ---------------------------------------------------------------------------
// Warm executes: no new allocations, scratch high water flat
// ---------------------------------------------------------------------------

TEST(MetricsWiring, WarmExecutesKeepScratchHighWaterFlat) {
  const topo::Machine machine = topo::generic(2, 4);
  const int p = machine.total_ranks();
  const std::size_t block = 16;
  test::run_sim(machine, [&](Comm& world) -> Task<void> {
    coll::AlltoallDesc d;
    d.block = block;
    d.algo = coll::Algo::kHierarchical;
    plan::CollectivePlan plan =
        plan::make_plan(world, machine, model::test_params(), d);
    Buffer send = world.alloc_buffer(block * p);
    Buffer recv = world.alloc_buffer(block * p);
    test::fill_send(send, world.rank(), p, block);
    co_await plan.execute(rt::ConstView(send.view()), recv.view());
    const std::uint64_t allocs = plan.scratch().allocations();
    const std::size_t high = plan.scratch().high_water_bytes();
    if (world.rank() == 0) {
      // Leaders stage gathered payloads through the arena; rank 0 leads
      // node 0. (Non-leader ranks may legitimately never touch it.)
      EXPECT_GT(high, 0u);
    }
    for (int it = 0; it < 4; ++it) {
      co_await plan.execute(rt::ConstView(send.view()), recv.view());
      // Warm executes recycle every buffer: no fresh arena allocations,
      // so the footprint high water cannot move.
      EXPECT_EQ(plan.scratch().allocations(), allocs);
      EXPECT_EQ(plan.scratch().high_water_bytes(), high);
    }
    EXPECT_EQ(plan.scratch().outstanding_bytes(), 0u);
    EXPECT_TRUE(test::check_recv(recv, world.rank(), p, block));
  });
}

}  // namespace
}  // namespace mca2a
