/// \file scaling_study.cpp
/// Capability-scale projection (the paper's §5: "develop a model to
/// evaluate these impacts at capability-scale"). Uses the discrete-event
/// simulator to sweep an algorithm portfolio on a machine you describe on
/// the command line — no cluster required.
///
///   ./build/examples/scaling_study [machine] [nodes] [bytes-per-pair]
///   machine: dane | amber | tuolomne (default dane)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/figure.hpp"
#include "harness/sweep.hpp"
#include "model/presets.hpp"
#include "topo/presets.hpp"

using namespace mca2a;

int main(int argc, char** argv) {
  const std::string machine_name = argc > 1 ? argv[1] : "dane";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 16;
  const std::size_t block =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1024;

  const topo::Machine machine = topo::by_name(machine_name, nodes);
  const model::NetParams net = model::for_machine(machine_name);
  std::printf("scaling_study: %s, %d nodes x %d ranks, %zu B per pair\n",
              machine_name.c_str(), nodes, machine.ppn(), block);

  struct Entry {
    const char* label;
    coll::Algo algo;
    int group_size;
  };
  const Entry entries[] = {
      {"System MPI", coll::Algo::kSystemMpi, 0},
      {"Hierarchical", coll::Algo::kHierarchical, 0},
      {"Multileader (4 ppl)", coll::Algo::kMultileader, 4},
      {"Node-Aware", coll::Algo::kNodeAware, 0},
      {"Locality-Aware (4 ppg)", coll::Algo::kLocalityAware, 4},
      {"Multileader + Locality (4 ppl)", coll::Algo::kMultileaderNodeAware, 4},
  };

  std::printf("\n%-32s %14s %14s %12s\n", "algorithm", "simulated time",
              "vs best", "messages");
  double best = 0.0;
  struct Row {
    const char* label;
    double seconds;
    std::uint64_t messages;
  };
  std::vector<Row> rows;
  for (const Entry& e : entries) {
    bench::RunSpec spec;
    spec.machine = machine.desc();
    spec.net = net;
    spec.algo = e.algo;
    spec.group_size = e.group_size;
    spec.block = block;
    bench::apply_env(spec);
    const bench::RunResult r = bench::run_sim(spec);
    rows.push_back(Row{e.label, r.seconds, r.messages});
    if (best == 0.0 || r.seconds < best) {
      best = r.seconds;
    }
  }
  for (const Row& r : rows) {
    std::printf("%-32s %14s %13.2fx %12llu\n", r.label,
                bench::format_time(r.seconds).c_str(), r.seconds / best,
                static_cast<unsigned long long>(r.messages));
  }
  return 0;
}
