/// \file fft_transpose.cpp
/// The paper's motivating workload: the global matrix transpose at the
/// heart of a distributed 2-D FFT. An N x N matrix is distributed by rows
/// (N/p contiguous rows per rank); the transpose re-distributes it by
/// columns. The communication pattern is exactly MPI_Alltoall with blocks
/// of (N/p)^2 elements, plus local pre/post packing.
///
/// Runs on the threads backend, validates the transpose element-by-element,
/// and compares the direct and locality-aware algorithms. The exchange
/// executes through a persistent CollectivePlan — the transpose of an
/// iterative FFT repeats the same descriptor every step, so setup is paid
/// once (A2A_NO_PLAN=1 restores the direct per-call path).
///
///   ./build/examples/fft_transpose [ranks] [N]

#include <algorithm>
#include <chrono>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "core/alltoall.hpp"
#include "model/presets.hpp"
#include "plan/plan.hpp"
#include "runtime/collectives.hpp"
#include "runtime/comm_bundle.hpp"
#include "runtime/env.hpp"
#include "smp/smp_runtime.hpp"
#include "topo/presets.hpp"

using namespace mca2a;
using Complexd = std::complex<double>;

namespace {

/// Value at matrix position (r, c).
Complexd element(int r, int c) {
  return Complexd(static_cast<double>(r) + 0.25,
                  static_cast<double>(c) - 0.5);
}

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const int n = argc > 2 ? std::atoi(argv[2]) : 256;
  if (n % ranks != 0 || ranks % 2 != 0) {
    std::fprintf(stderr,
                 "need an even rank count dividing the matrix size "
                 "(got ranks=%d, N=%d)\n",
                 ranks, n);
    return 1;
  }
  const int rows_per_rank = n / ranks;
  const std::size_t block_elems =
      static_cast<std::size_t>(rows_per_rank) * rows_per_rank;
  const std::size_t block = block_elems * sizeof(Complexd);
  std::printf("fft_transpose: %dx%d matrix on %d ranks (%zu B blocks)\n", n, n,
              ranks, block);

  const topo::Machine machine = topo::generic(2, ranks / 2);
  const coll::Algo algos[] = {coll::Algo::kPairwiseDirect,
                              coll::Algo::kBruckDirect,
                              coll::Algo::kNodeAware};

  smp::SmpRuntime runtime(ranks);
  for (coll::Algo algo : algos) {
    std::vector<double> elapsed(ranks, 0.0);
    std::vector<int> errors(ranks, 0);
    runtime.run([&](rt::Comm& world) -> rt::Task<void> {
      const int me = world.rank();
      const int p = world.size();
      // Plan the exchange once, before packing: selection, communicator
      // construction and scratch live here, not in the timed region.
      std::optional<plan::CollectivePlan> pl;
      std::optional<rt::LocalityComms> lc;
      if (!rt::env::get_flag("A2A_NO_PLAN")) {
        coll::AlltoallDesc desc;
        desc.block = block;
        desc.algo = algo;
        pl.emplace(plan::make_plan(world, machine, model::test_params(),
                                   desc));
      } else if (coll::needs_locality(algo)) {
        lc.emplace(rt::build_locality_comms(world, machine, machine.ppn(),
                                            false));
      }

      // My rows [me*rows_per_rank, (me+1)*rows_per_rank), row-major.
      std::vector<Complexd> mine(static_cast<std::size_t>(rows_per_rank) * n);
      for (int r = 0; r < rows_per_rank; ++r) {
        for (int c = 0; c < n; ++c) {
          mine[static_cast<std::size_t>(r) * n + c] =
              element(me * rows_per_rank + r, c);
        }
      }

      // Pack: block d = my rows' columns owned by rank d after transpose,
      // i.e. the (rows_per_rank x rows_per_rank) tile (me, d).
      std::vector<Complexd> send(block_elems * p);
      for (int d = 0; d < p; ++d) {
        for (int r = 0; r < rows_per_rank; ++r) {
          for (int c = 0; c < rows_per_rank; ++c) {
            send[d * block_elems + r * rows_per_rank + c] =
                mine[static_cast<std::size_t>(r) * n + d * rows_per_rank + c];
          }
        }
      }

      std::vector<Complexd> recv(block_elems * p);
      rt::ConstView sview{reinterpret_cast<const std::byte*>(send.data()),
                          send.size() * sizeof(Complexd)};
      rt::MutView rview{reinterpret_cast<std::byte*>(recv.data()),
                        recv.size() * sizeof(Complexd)};

      co_await rt::barrier(world);
      const auto t0 = std::chrono::steady_clock::now();
      if (pl) {
        co_await pl->execute(sview, rview);
      } else {
        co_await coll::run_alltoall(algo, world, lc ? &*lc : nullptr, sview,
                                    rview, block, {});
      }
      co_await rt::barrier(world);
      elapsed[me] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();

      // Unpack: tile from rank s holds rows [s*rpr, ...) of the original,
      // columns [me*rpr, ...). Transposed, I own rows me*rpr.. as columns.
      // Validate transposed(r, c) == element(c_global, r_global).
      for (int s = 0; s < p; ++s) {
        for (int r = 0; r < rows_per_rank; ++r) {
          for (int c = 0; c < rows_per_rank; ++c) {
            // After transpose my row (me*rpr + c) column (s*rpr + r):
            const Complexd got = recv[s * block_elems + r * rows_per_rank + c];
            const Complexd want = element(s * rows_per_rank + r,
                                          me * rows_per_rank + c);
            if (got != want) {
              ++errors[me];
            }
          }
        }
      }
    });
    double worst = 0.0;
    int bad = 0;
    for (int r = 0; r < ranks; ++r) {
      worst = std::max(worst, elapsed[r]);
      bad += errors[r];
    }
    std::printf("  %-20s %8.3f ms   %s\n",
                std::string(coll::algo_name(algo)).c_str(), worst * 1e3,
                bad == 0 ? "transpose OK" : "TRANSPOSE WRONG");
  }
  return 0;
}
