/// \file tuner_demo.cpp
/// Dynamic algorithm selection (paper §5 future work): for each message
/// size, the analytic model picks an (algorithm, group size); the simulator
/// then measures the chosen algorithm against the fixed-algorithm
/// portfolio, reporting how close the selection came to the true optimum.
///
/// Selection runs through a plan::TuningTable, so each (machine, size)
/// question is answered by the closed-form model exactly once and by an
/// O(1) lookup afterwards; the table round-trips through a text file the
/// way a deployment would precompute it. The measured runs execute through
/// persistent plans (RunSpec::use_plan), keeping communicator construction
/// out of the timed region.
///
/// The final section is the static-vs-online showdown (src/autotune/):
/// an adapt-mode OnlineSelector runs a bounded exploration of the
/// model-plausible candidates against real (simulated) executions, then
/// exploits the measured winner — and its warmed profile round-trips
/// through the TuningTable v3 format, so a restarted process picks the
/// measured winner immediately, zero re-exploration.
///
///   ./build/examples/tuner_demo [machine] [nodes]

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "autotune/selector.hpp"
#include "coll_ext/ext_tuner.hpp"
#include "core/tuner.hpp"
#include "harness/figure.hpp"
#include "harness/sweep.hpp"
#include "model/presets.hpp"
#include "plan/tuning_table.hpp"
#include "topo/presets.hpp"

using namespace mca2a;

int main(int argc, char** argv) {
  const std::string machine_name = argc > 1 ? argv[1] : "dane";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 8;
  const topo::Machine machine = topo::by_name(machine_name, nodes);
  const model::NetParams net = model::for_machine(machine_name);

  std::printf("tuner_demo: %s, %d nodes x %d ranks\n", machine_name.c_str(),
              nodes, machine.ppn());
  std::printf("%-10s %-34s %14s %14s\n", "size", "selected",
              "selected time", "node-aware");

  const std::vector<std::size_t> sizes = {4, 64, 512, 4096};

  // Fill the tuning table once (the "login node" step)...
  plan::TuningTable table;
  for (std::size_t block : sizes) {
    table.choose(machine, net, block);
  }
  // ...serialize and reload it, as a deployment shipping a precomputed
  // table would.
  std::stringstream file;
  table.save(file);
  plan::TuningTable loaded = plan::TuningTable::load(file);

  for (std::size_t block : sizes) {
    // Every lookup is now a table hit: no model evaluation.
    const coll::Choice choice = loaded.choose(machine, net, block);

    auto measure = [&](coll::Algo algo, int g) {
      bench::RunSpec spec;
      spec.machine = machine.desc();
      spec.net = net;
      spec.algo = algo;
      spec.group_size = g;
      spec.block = block;
      spec.use_plan = true;
      bench::apply_env(spec);
      return bench::run_sim(spec).seconds;
    };

    const double chosen = measure(choice.algo, choice.group_size);
    const double baseline = measure(coll::Algo::kNodeAware, 0);
    std::printf("%-10zu %-24s (g=%-3d) %14s %14s\n", block,
                std::string(coll::algo_name(choice.algo)).c_str(),
                choice.group_size, bench::format_time(chosen).c_str(),
                bench::format_time(baseline).c_str());
  }
  std::printf(
      "table: %zu entries, %llu lookups, %llu hits after reload\n",
      loaded.size(), static_cast<unsigned long long>(loaded.lookups()),
      static_cast<unsigned long long>(loaded.hits()));

  // The same table memoizes the whole collective family (entries carry an
  // op tag in the serialized form): ask it about the §5 extensions too.
  std::printf("\nfamily-wide selection (same table):\n");
  for (std::size_t block : sizes) {
    const coll::AllgatherChoice ag =
        loaded.choose_allgather(machine, net, block);
    std::printf("  allgather %-6zu -> %-16s (g=%d)\n", block,
                std::string(coll::allgather_algo_name(ag.algo)).c_str(),
                ag.group_size);
  }
  for (std::size_t count : {std::size_t{16}, std::size_t{65536}}) {
    const coll::AllreduceChoice ar =
        loaded.choose_allreduce(machine, net, count, sizeof(double));
    std::printf("  allreduce %-6zu -> %-16s (g=%d)\n", count,
                std::string(coll::allreduce_algo_name(ar.algo)).c_str(),
                ar.group_size);
  }
  std::printf("table now: %zu entries\n", loaded.size());

  // --- static vs online showdown (src/autotune/) ----------------------------
  // Adapt mode: each size class explores the model-plausible candidates
  // against real executions (bounded: candidates x explore_target), then
  // exploits the measured winner. The model's pick is the baseline.
  std::printf("\nstatic vs online (adapt mode, %d executions per size):\n",
              20);
  autotune::OnlineSelector sel(autotune::Mode::kAdapt);
  for (std::size_t block : sizes) {
    bench::RunSpec spec;
    spec.machine = machine.desc();
    spec.net = net;
    spec.block = block;
    spec.reps = 20;
    spec.autotune = true;
    spec.selector = &sel;
    const bench::RunResult r = bench::run_sim(spec);
    const coll::Choice model_pick = loaded.choose(machine, net, block);
    std::printf(
        "  %-8zu model %-24s online %-24s (g=%-3d, steady %s)\n", block,
        std::string(coll::algo_name(model_pick.algo)).c_str(),
        std::string(
            coll::algo_name(static_cast<coll::Algo>(r.rep_algos.back())))
            .c_str(),
        r.rep_groups.back(),
        bench::format_time(r.rep_seconds.back()).c_str());
  }
  std::printf(
      "selector: %llu explorations, %llu exploitations; profile holds %zu "
      "entries / %llu samples\n",
      static_cast<unsigned long long>(sel.explorations()),
      static_cast<unsigned long long>(sel.exploitations()),
      sel.profiler().size(),
      static_cast<unsigned long long>(sel.profiler().total_samples()));

  // Persistence: the measured profile ships inside the TuningTable (v3
  // section). A restarted process that loads it exploits immediately.
  plan::TuningTable with_profile;
  with_profile.profile().merge(sel.profiler());
  std::stringstream profile_file;
  with_profile.save(profile_file);
  const plan::TuningTable reloaded = plan::TuningTable::load(profile_file);
  autotune::OnlineSelector warm(autotune::Mode::kAdapt);
  warm.profiler().merge(reloaded.profile());
  const auto warm_choice =
      warm.choose_alltoall(machine, net, sizes.back(), "sim");
  const std::string warm_name =
      warm_choice ? std::string(coll::algo_name(warm_choice->algo)) : "?";
  std::printf(
      "restart: profile reloaded from a v3 table (%zu entries); warm "
      "selector picks %s for %zu B with %llu explorations\n",
      reloaded.profile().size(), warm_name.c_str(), sizes.back(),
      static_cast<unsigned long long>(warm.explorations()));
  return 0;
}
