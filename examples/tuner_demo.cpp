/// \file tuner_demo.cpp
/// Dynamic algorithm selection (paper §5 future work): for each message
/// size, the analytic model picks an (algorithm, group size); the simulator
/// then measures the chosen algorithm against the fixed-algorithm
/// portfolio, reporting how close the selection came to the true optimum.
///
///   ./build/examples/tuner_demo [machine] [nodes]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/tuner.hpp"
#include "harness/figure.hpp"
#include "harness/sweep.hpp"
#include "model/presets.hpp"
#include "topo/presets.hpp"

using namespace mca2a;

int main(int argc, char** argv) {
  const std::string machine_name = argc > 1 ? argv[1] : "dane";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 8;
  const topo::Machine machine = topo::by_name(machine_name, nodes);
  const model::NetParams net = model::for_machine(machine_name);

  std::printf("tuner_demo: %s, %d nodes x %d ranks\n", machine_name.c_str(),
              nodes, machine.ppn());
  std::printf("%-10s %-34s %14s %14s\n", "size", "selected",
              "selected time", "node-aware");

  for (std::size_t block : {std::size_t{4}, std::size_t{64}, std::size_t{512},
                            std::size_t{4096}}) {
    const coll::Choice choice = coll::select_algorithm(machine, net, block);

    auto measure = [&](coll::Algo algo, int g) {
      bench::RunSpec spec;
      spec.machine = machine.desc();
      spec.net = net;
      spec.algo = algo;
      spec.group_size = g;
      spec.block = block;
      bench::apply_env(spec);
      return bench::run_sim(spec).seconds;
    };

    const double chosen = measure(choice.algo, choice.group_size);
    const double baseline = measure(coll::Algo::kNodeAware, 0);
    std::printf("%-10zu %-24s (g=%-3d) %14s %14s\n", block,
                std::string(coll::algo_name(choice.algo)).c_str(),
                choice.group_size, bench::format_time(chosen).c_str(),
                bench::format_time(baseline).c_str());
  }
  return 0;
}
