/// \file ml_shuffle.cpp
/// Deep-learning motivation from the paper's introduction: the token
/// shuffle of a mixture-of-experts (MoE) layer. Every rank routes a batch
/// of tokens to the rank owning the chosen expert, processes the tokens it
/// receives, and routes them back — two all-to-all exchanges per layer.
///
/// Token counts per destination are unequal, so this is exactly the
/// irregular workload the locality-aware alltoallv targets. The example
/// runs the standard recipe end to end:
///
///   1. a regular 8-byte alltoall of per-peer byte counts (every rank
///      learns what it will receive);
///   2. an allgather of per-rank (total, max) so every rank agrees on the
///      global AlltoallvSkew signature — the tuner's collective input;
///   3. the shuffle itself through a locality-aware alltoallv plan
///      (multi-leader node-aware when the node width allows, hierarchical
///      otherwise), no padding, no capacity factor.
///
/// The imbalance factor the tuner saw, and what it would have picked, are
/// printed. A2A_NO_PLAN=1 restores the direct pairwise path.
///
/// After the shuffle, the example switches to the data-parallel view of
/// the same training step: the backward pass fills gradient *buckets*, and
/// each bucket's allreduce is started nonblocking as soon as its bucket is
/// ready — the classic communication/compute overlap, expressed with
/// plan::Schedule over started handles. On this threads backend each
/// start() progresses eagerly (blocking-MPI semantics); the simulator
/// genuinely overlaps the buckets — bench/overlap_window.cpp measures it.
///
///   ./build/examples/ml_shuffle [ranks] [tokens-per-rank]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <optional>
#include <random>
#include <vector>

#include "coll_ext/alltoallv.hpp"
#include "coll_ext/ext_tuner.hpp"
#include "coll_ext/op_desc.hpp"
#include "core/alltoall.hpp"
#include "model/presets.hpp"
#include "plan/plan.hpp"
#include "plan/schedule.hpp"
#include "runtime/collectives.hpp"
#include "runtime/env.hpp"
#include "smp/smp_runtime.hpp"
#include "topo/presets.hpp"

using namespace mca2a;

namespace {

struct Token {
  int origin_rank;
  int origin_slot;
  float activation;
};

/// One persistent alltoallv per traffic direction: planning (leader
/// communicators, displacement tables, scratch) happens here, outside any
/// timed region, exactly what the plan machinery is for. Absent under
/// A2A_NO_PLAN, where the shuffles run direct pairwise instead.
std::optional<plan::CollectivePlan> make_shuffle_plan(
    rt::Comm& world, const topo::Machine& machine,
    const std::vector<std::size_t>& scounts,
    const std::vector<std::size_t>& rcounts, const coll::AlltoallvSkew& skew,
    coll::AlltoallvAlgo algo, int group_size) {
  if (rt::env::get_flag("A2A_NO_PLAN")) {
    return std::nullopt;
  }
  coll::AlltoallvDesc desc;
  desc.send_counts = scounts;
  desc.recv_counts = rcounts;
  desc.algo = algo;
  desc.skew = skew;
  plan::PlanOptions popts;
  popts.group_size = group_size;
  return plan::make_plan(world, machine, model::test_params(), desc, popts);
}

/// Execute one shuffle through its plan, or direct pairwise without one.
rt::Task<void> shuffle(rt::Comm& world,
                       std::optional<plan::CollectivePlan>& pl,
                       const std::vector<std::size_t>& scounts,
                       const std::vector<std::size_t>& rcounts,
                       rt::ConstView send, rt::MutView recv) {
  if (pl) {
    co_await pl->execute(send, recv);
    co_return;
  }
  const auto sdispls = coll::displs_from_counts(scounts);
  const auto rdispls = coll::displs_from_counts(rcounts);
  co_await coll::alltoallv_pairwise(world, send, scounts, sdispls, recv,
                                    rcounts, rdispls);
}

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const int tokens = argc > 2 ? std::atoi(argv[2]) : 512;
  std::printf("ml_shuffle: %d experts (ranks), %d tokens per rank\n", ranks,
              tokens);

  // Machine view of the thread pool: two "nodes" when the rank count
  // splits evenly (so the locality algorithms have an inter-node
  // dimension), one otherwise.
  const int nodes = (ranks >= 4 && ranks % 2 == 0) ? 2 : 1;
  const topo::Machine machine = topo::generic(nodes, ranks / nodes);
  const int ppn = machine.ppn();
  // Multi-leader node-aware when the node splits into 2 leader groups,
  // classic hierarchical (one leader per node) otherwise.
  const coll::AlltoallvAlgo algo =
      ppn % 2 == 0 ? coll::AlltoallvAlgo::kMultileaderNodeAware
                   : coll::AlltoallvAlgo::kHierarchical;
  const int group_size = ppn % 2 == 0 ? ppn / 2 : ppn;

  std::vector<long> checksums(ranks, 0);
  std::vector<long> expected(ranks, 0);
  std::vector<double> elapsed(ranks, 0.0);

  smp::run_threads(ranks, [&](rt::Comm& world) -> rt::Task<void> {
    const int me = world.rank();
    const int p = world.size();
    std::mt19937 rng(1234 + me);
    std::uniform_int_distribution<int> expert(0, p - 1);

    // Create tokens and pick an expert for each.
    std::vector<std::vector<Token>> outbox(p);
    for (int t = 0; t < tokens; ++t) {
      Token tok{me, t, static_cast<float>(me) + 0.001f * t};
      const int e = expert(rng);
      outbox[e].push_back(tok);
      expected[me] += e;  // every token contributes its expert id
    }

    // --- count-metadata exchange: the alltoallv preamble ------------------
    // A regular 8-byte alltoall tells every rank how much it will receive
    // from whom — the counts MPI_Alltoallv requires up front.
    std::vector<std::size_t> scounts(p), rcounts(p);
    for (int d = 0; d < p; ++d) {
      scounts[d] = outbox[d].size() * sizeof(Token);
    }
    {
      rt::Buffer cs = rt::Buffer::real(p * sizeof(std::size_t));
      rt::Buffer cr = rt::Buffer::real(p * sizeof(std::size_t));
      std::memcpy(cs.data(), scounts.data(), p * sizeof(std::size_t));
      co_await coll::alltoall_nonblocking(world, cs.view(), cr.view(),
                                          sizeof(std::size_t));
      std::memcpy(rcounts.data(), cr.data(), p * sizeof(std::size_t));
    }

    // --- agree on the global skew signature -------------------------------
    // The tuner's input is collective: allgather per-rank (row total, row
    // max) and reduce locally, so every rank sees the same AlltoallvSkew.
    coll::AlltoallvSkew skew;
    {
      std::size_t row[2] = {0, 0};
      for (int d = 0; d < p; ++d) {
        row[0] += scounts[d];
        row[1] = std::max(row[1], scounts[d]);
      }
      rt::Buffer mine = rt::Buffer::real(sizeof(row));
      rt::Buffer all = rt::Buffer::real(p * sizeof(row));
      std::memcpy(mine.data(), row, sizeof(row));
      co_await rt::allgather(world, mine.view(), all.view());
      const auto* rows = reinterpret_cast<const std::size_t*>(all.data());
      for (int r = 0; r < p; ++r) {
        skew.total_bytes += rows[2 * r];
        skew.max_bytes = std::max(skew.max_bytes, rows[2 * r + 1]);
      }
    }
    if (me == 0) {
      const auto choice = coll::select_alltoallv_algorithm(
          machine, model::test_params(), skew);
      std::printf(
          "  tuner saw imbalance %.2f (total %zu B); it would pick %s, "
          "this run uses %s (g=%d)\n",
          choice.imbalance, skew.total_bytes,
          std::string(coll::alltoallv_algo_name(choice.algo)).c_str(),
          std::string(coll::alltoallv_algo_name(algo)).c_str(), group_size);
    }

    // --- route out: locality-aware alltoallv, no padding ------------------
    // One persistent plan per direction (route-out and route-back have
    // transposed counts), built before the timed region so the measured
    // time is the exchange, not plan construction.
    auto out_plan = make_shuffle_plan(world, machine, scounts, rcounts, skew,
                                      algo, group_size);
    auto back_plan = make_shuffle_plan(world, machine, rcounts, scounts, skew,
                                       algo, group_size);
    const std::size_t stotal =
        std::accumulate(scounts.begin(), scounts.end(), std::size_t{0});
    const std::size_t rtotal =
        std::accumulate(rcounts.begin(), rcounts.end(), std::size_t{0});
    rt::Buffer send = rt::Buffer::real(stotal);
    rt::Buffer recv = rt::Buffer::real(rtotal);
    {
      std::size_t off = 0;
      for (int d = 0; d < p; ++d) {
        std::memcpy(send.data() + off, outbox[d].data(), scounts[d]);
        off += scounts[d];
      }
    }
    co_await rt::barrier(world);
    const auto t0 = std::chrono::steady_clock::now();
    co_await shuffle(world, out_plan, scounts, rcounts,
                     rt::ConstView(send.view()), recv.view());
    elapsed[me] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    // "Expert" work: every received token contributes my expert id, then
    // bounce everything home — the return counts are the transpose of the
    // outbound ones, already in hand.
    for (int s = 0; s < p; ++s) {
      checksums[me] +=
          static_cast<long>(rcounts[s] / sizeof(Token)) * me;
    }
    rt::Buffer back = rt::Buffer::real(stotal);
    co_await shuffle(world, back_plan, rcounts, scounts,
                     rt::ConstView(recv.view()), back.view());

    // Every token must arrive back with its origin intact.
    int mine_back = 0;
    {
      const auto* toks = reinterpret_cast<const Token*>(back.data());
      const int count = static_cast<int>(stotal / sizeof(Token));
      for (int t = 0; t < count; ++t) {
        if (toks[t].origin_rank != me) {
          std::fprintf(stderr, "token returned to the wrong rank\n");
          std::abort();
        }
        ++mine_back;
      }
    }
    if (mine_back != tokens) {
      std::fprintf(stderr, "rank %d lost tokens: %d of %d returned\n", me,
                   mine_back, tokens);
      std::abort();
    }

    // --- gradient-bucket overlap -----------------------------------------
    // Backward pass, data-parallel: 4 gradient buckets, each reduced
    // across ranks as soon as it is produced. One persistent allreduce
    // plan per bucket (a plan admits one in-flight op); the Schedule
    // starts bucket b's allreduce the moment its compute is charged,
    // overlapping it with the remaining buckets' compute.
    constexpr int kBuckets = 4;
    constexpr int kBucketFloats = 1024;
    constexpr std::size_t kBucketBytes = kBucketFloats * sizeof(float);
    coll::AllreduceDesc gdesc;
    gdesc.count = kBucketFloats;
    gdesc.combiner = coll::sum_combiner<float>();
    gdesc.algo = coll::AllreduceAlgo::kRecursiveDoubling;
    std::vector<plan::CollectivePlan> bucket_plans;
    std::vector<rt::Buffer> grads;
    for (int b = 0; b < kBuckets; ++b) {
      bucket_plans.push_back(plan::make_plan(world, topo::generic(1, p),
                                             model::test_params(), gdesc));
      grads.push_back(rt::Buffer::real(kBucketBytes));
      auto v = grads[b].typed<float>();
      for (int i = 0; i < kBucketFloats; ++i) {
        v[i] = static_cast<float>(me) + 0.01f * b;
      }
    }
    plan::Schedule sched;
    for (int b = 0; b < kBuckets; ++b) {
      // compute_bytes models producing bucket b before its reduction may
      // start (charged on the simulator; free on threads).
      sched.add_inplace(bucket_plans[b], grads[b].view(),
                        /*compute_bytes=*/kBucketBytes);
    }
    co_await sched.run();
    for (int b = 0; b < kBuckets; ++b) {
      auto v = grads[b].typed<float>();
      const float want =
          static_cast<float>(p) * (p - 1) / 2 + p * 0.01f * b;
      for (int i = 0; i < kBucketFloats; ++i) {
        if (std::fabs(v[i] - want) > 1e-3f) {
          std::fprintf(stderr, "rank %d: bucket %d gradient mismatch\n", me,
                       b);
          std::abort();
        }
      }
    }
    if (me == 0) {
      std::printf(
          "  gradient buckets: %d x %d floats allreduced via Schedule "
          "(makespan %.3f ms)\n",
          kBuckets, kBucketFloats, sched.makespan() * 1e3);
    }
  });

  long total_expected = 0;
  long total_got = 0;
  double worst = 0.0;
  for (int r = 0; r < ranks; ++r) {
    total_expected += expected[r];
    total_got += checksums[r];
    worst = std::max(worst, elapsed[r]);
  }
  std::printf("  routed checksum %ld (expected %ld) — %s\n", total_got,
              total_expected, total_got == total_expected ? "OK" : "MISMATCH");
  std::printf("  shuffle time (max rank): %.3f ms\n", worst * 1e3);
  return total_got == total_expected ? 0 : 1;
}
