/// \file ml_shuffle.cpp
/// Deep-learning motivation from the paper's introduction: the token
/// shuffle of a mixture-of-experts (MoE) layer. Every rank routes a batch
/// of tokens to the rank owning the chosen expert, processes the tokens it
/// receives, and routes them back — two all-to-all exchanges per layer.
///
/// Token counts per destination are unequal, so this example shows the
/// standard padded-alltoall recipe (capacity = max tokens per pair,
/// header carries the real count), which is how fixed-size all-to-all
/// underpins MPI_Alltoallv-style workloads.
///
/// Both shuffles of a layer repeat the same (communicator, block)
/// exchange, so one persistent CollectivePlan serves the route-out and the
/// route-back (A2A_NO_PLAN=1 restores the direct per-call path).
///
/// After the shuffle, the example switches to the data-parallel view of
/// the same training step: the backward pass fills gradient *buckets*, and
/// each bucket's allreduce is started nonblocking as soon as its bucket is
/// ready — the classic communication/compute overlap, expressed with
/// plan::Schedule over started handles. On this threads backend each
/// start() progresses eagerly (blocking-MPI semantics); the simulator
/// genuinely overlaps the buckets — bench/overlap_window.cpp measures it.
///
///   ./build/examples/ml_shuffle [ranks] [tokens-per-rank]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <random>
#include <vector>

#include "coll_ext/op_desc.hpp"
#include "core/alltoall.hpp"
#include "model/presets.hpp"
#include "plan/plan.hpp"
#include "plan/schedule.hpp"
#include "runtime/collectives.hpp"
#include "smp/smp_runtime.hpp"
#include "topo/presets.hpp"

using namespace mca2a;

namespace {

struct Token {
  int origin_rank;
  int origin_slot;
  float activation;
};

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const int tokens = argc > 2 ? std::atoi(argv[2]) : 512;
  std::printf("ml_shuffle: %d experts (ranks), %d tokens per rank\n", ranks,
              tokens);

  // Capacity per (src, dst) pair: tokens routed roughly uniformly, with
  // slack (the "capacity factor" of MoE systems). Overflowing tokens would
  // be dropped — we size generously and assert nothing drops.
  const int capacity = 2 * (tokens / ranks) + 8;
  const std::size_t block = sizeof(int) + capacity * sizeof(Token);

  std::vector<long> checksums(ranks, 0);
  std::vector<long> expected(ranks, 0);
  std::vector<double> elapsed(ranks, 0.0);

  smp::run_threads(ranks, [&](rt::Comm& world) -> rt::Task<void> {
    const int me = world.rank();
    const int p = world.size();
    // One plan serves every shuffle of the run (two per MoE layer).
    std::optional<plan::CollectivePlan> pl;
    if (std::getenv("A2A_NO_PLAN") == nullptr) {
      coll::AlltoallDesc desc;
      desc.block = block;
      desc.algo = coll::Algo::kNonblockingDirect;
      pl.emplace(plan::make_plan(world, topo::generic(1, p),
                                 model::test_params(), desc));
    }
    std::mt19937 rng(1234 + me);
    std::uniform_int_distribution<int> expert(0, p - 1);

    // Create tokens and pick an expert for each.
    std::vector<std::vector<Token>> outbox(p);
    for (int t = 0; t < tokens; ++t) {
      Token tok{me, t, static_cast<float>(me) + 0.001f * t};
      const int e = expert(rng);
      outbox[e].push_back(tok);
      expected[me] += e;  // every token contributes its expert id
    }

    // Pack: [count:int][tokens...] per destination, padded to capacity.
    rt::Buffer send = rt::Buffer::real(block * p);
    rt::Buffer recv = rt::Buffer::real(block * p);
    for (int d = 0; d < p; ++d) {
      auto* base = send.data() + d * block;
      const int count = static_cast<int>(outbox[d].size());
      if (count > capacity) {
        std::fprintf(stderr, "capacity overflow (%d > %d)\n", count, capacity);
        std::abort();
      }
      std::memcpy(base, &count, sizeof(int));
      std::memcpy(base + sizeof(int), outbox[d].data(),
                  outbox[d].size() * sizeof(Token));
    }

    co_await rt::barrier(world);
    const auto t0 = std::chrono::steady_clock::now();
    if (pl) {
      co_await pl->execute(rt::ConstView(send.view()), recv.view());
    } else {
      co_await coll::alltoall_nonblocking(world, send.view(), recv.view(),
                                          block);
    }
    elapsed[me] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    // "Expert" work: accumulate which tokens arrived (checksum by expert id
    // = my rank), then bounce them home through a second all-to-all.
    rt::Buffer back_send = rt::Buffer::real(block * p);
    for (int s = 0; s < p; ++s) {
      const auto* base = recv.data() + s * block;
      int count = 0;
      std::memcpy(&count, base, sizeof(int));
      checksums[me] += static_cast<long>(count) * me;
      // Return the same tokens to their origin.
      std::memcpy(back_send.data() + s * block, base, block);
    }
    rt::Buffer back = rt::Buffer::real(block * p);
    if (pl) {
      co_await pl->execute(rt::ConstView(back_send.view()), back.view());
    } else {
      co_await coll::alltoall_nonblocking(world, back_send.view(), back.view(),
                                          block);
    }

    // Every token must arrive back with its origin intact.
    int mine_back = 0;
    for (int s = 0; s < p; ++s) {
      const auto* base = back.data() + s * block;
      int count = 0;
      std::memcpy(&count, base, sizeof(int));
      std::vector<Token> toks(count);
      std::memcpy(toks.data(), base + sizeof(int), count * sizeof(Token));
      for (const Token& t : toks) {
        if (t.origin_rank != me) {
          std::fprintf(stderr, "token returned to the wrong rank\n");
          std::abort();
        }
        ++mine_back;
      }
    }
    if (mine_back != tokens) {
      std::fprintf(stderr, "rank %d lost tokens: %d of %d returned\n", me,
                   mine_back, tokens);
      std::abort();
    }

    // --- gradient-bucket overlap -----------------------------------------
    // Backward pass, data-parallel: 4 gradient buckets, each reduced
    // across ranks as soon as it is produced. One persistent allreduce
    // plan per bucket (a plan admits one in-flight op); the Schedule
    // starts bucket b's allreduce the moment its compute is charged,
    // overlapping it with the remaining buckets' compute.
    constexpr int kBuckets = 4;
    constexpr int kBucketFloats = 1024;
    constexpr std::size_t kBucketBytes = kBucketFloats * sizeof(float);
    coll::AllreduceDesc gdesc;
    gdesc.count = kBucketFloats;
    gdesc.combiner = coll::sum_combiner<float>();
    gdesc.algo = coll::AllreduceAlgo::kRecursiveDoubling;
    std::vector<plan::CollectivePlan> bucket_plans;
    std::vector<rt::Buffer> grads;
    for (int b = 0; b < kBuckets; ++b) {
      bucket_plans.push_back(plan::make_plan(world, topo::generic(1, p),
                                             model::test_params(), gdesc));
      grads.push_back(rt::Buffer::real(kBucketBytes));
      auto v = grads[b].typed<float>();
      for (int i = 0; i < kBucketFloats; ++i) {
        v[i] = static_cast<float>(me) + 0.01f * b;
      }
    }
    plan::Schedule sched;
    for (int b = 0; b < kBuckets; ++b) {
      // compute_bytes models producing bucket b before its reduction may
      // start (charged on the simulator; free on threads).
      sched.add_inplace(bucket_plans[b], grads[b].view(),
                        /*compute_bytes=*/kBucketBytes);
    }
    co_await sched.run();
    for (int b = 0; b < kBuckets; ++b) {
      auto v = grads[b].typed<float>();
      const float want =
          static_cast<float>(p) * (p - 1) / 2 + p * 0.01f * b;
      for (int i = 0; i < kBucketFloats; ++i) {
        if (std::fabs(v[i] - want) > 1e-3f) {
          std::fprintf(stderr, "rank %d: bucket %d gradient mismatch\n", me,
                       b);
          std::abort();
        }
      }
    }
    if (me == 0) {
      std::printf(
          "  gradient buckets: %d x %d floats allreduced via Schedule "
          "(makespan %.3f ms)\n",
          kBuckets, kBucketFloats, sched.makespan() * 1e3);
    }
  });

  long total_expected = 0;
  long total_got = 0;
  double worst = 0.0;
  for (int r = 0; r < ranks; ++r) {
    total_expected += expected[r];
    total_got += checksums[r];
    worst = std::max(worst, elapsed[r]);
  }
  std::printf("  routed checksum %ld (expected %ld) — %s\n", total_got,
              total_expected, total_got == total_expected ? "OK" : "MISMATCH");
  std::printf("  shuffle time (max rank): %.3f ms\n", worst * 1e3);
  return total_got == total_expected ? 0 : 1;
}
