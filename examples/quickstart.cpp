/// \file quickstart.cpp
/// Minimal end-to-end example: run an all-to-all exchange among real
/// threads on this machine, validate the result, and compare a few
/// algorithms' wall-clock times. The last section shows the persistent
/// plan/execute API (plan/plan.hpp): setup once, execute many times.
///
/// Build & run:
///   cmake -B build && cmake --build build
///   ./build/examples/quickstart [ranks] [bytes-per-pair]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <vector>

#include "coll_ext/allgather.hpp"
#include "coll_ext/allreduce.hpp"
#include "coll_ext/op_desc.hpp"
#include "core/alltoall.hpp"
#include "model/presets.hpp"
#include "obs/metrics.hpp"
#include "plan/plan.hpp"
#include "runtime/collectives.hpp"
#include "runtime/comm_bundle.hpp"
#include "smp/smp_runtime.hpp"
#include "topo/presets.hpp"

using namespace mca2a;

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::size_t block = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 256;
  std::printf("quickstart: %d ranks (threads), %zu bytes per pair\n", ranks,
              block);

  // Pretend the threads are 2 "nodes" so the locality algorithms have a
  // hierarchy to exploit. Any machine shape works as long as it matches
  // the rank count.
  if (ranks % 2 != 0) {
    std::fprintf(stderr, "need an even rank count\n");
    return 1;
  }
  const topo::Machine machine = topo::generic(2, ranks / 2);

  const coll::Algo algos[] = {
      coll::Algo::kPairwiseDirect,
      coll::Algo::kNonblockingDirect,
      coll::Algo::kBruckDirect,
      coll::Algo::kNodeAware,
      coll::Algo::kMultileaderNodeAware,
  };

  smp::SmpRuntime runtime(ranks);
  for (coll::Algo algo : algos) {
    std::vector<int> failures(ranks, 0);
    std::vector<double> elapsed(ranks, 0.0);
    runtime.run([&](rt::Comm& world) -> rt::Task<void> {
      const int me = world.rank();
      const int p = world.size();
      // Locality communicators (groups of 2 ranks) for the hierarchical
      // algorithms; cheap to build, reusable across calls.
      std::optional<rt::LocalityComms> lc;
      if (coll::needs_locality(algo)) {
        lc.emplace(rt::build_locality_comms(world, machine, 2, true));
      }
      rt::Buffer send = rt::Buffer::real(block * p);
      rt::Buffer recv = rt::Buffer::real(block * p);
      // Block d carries the pair (me, d) repeated.
      for (int d = 0; d < p; ++d) {
        std::memset(send.data() + d * block, (me * 31 + d) & 0xFF, block);
      }

      co_await rt::barrier(world);
      const auto t0 = std::chrono::steady_clock::now();
      co_await coll::run_alltoall(algo, world, lc ? &*lc : nullptr,
                                  send.view(), recv.view(), block, {});
      co_await rt::barrier(world);
      elapsed[me] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();

      // Validate: block s must carry (s, me).
      for (int s = 0; s < p; ++s) {
        const auto want = static_cast<std::byte>((s * 31 + me) & 0xFF);
        for (std::size_t k = 0; k < block; ++k) {
          if (recv.data()[s * block + k] != want) {
            ++failures[me];
            break;
          }
        }
      }
    });
    double worst = 0.0;
    int bad = 0;
    for (int r = 0; r < ranks; ++r) {
      worst = std::max(worst, elapsed[r]);
      bad += failures[r];
    }
    std::printf("  %-24s %8.3f ms   %s\n",
                std::string(coll::algo_name(algo)).c_str(), worst * 1e3,
                bad == 0 ? "OK" : "CORRUPT");
  }

  // --- persistent plans: setup once, execute many times ---------------------
  // Every collective is described by a typed descriptor (coll::OpDesc) and
  // planned through one entry point: make_plan validates the descriptor,
  // runs selection, and builds the locality communicators and scratch
  // buffers up front; each execute() is then just the exchange — the
  // MPI_*_init pattern for iterative workloads.
  constexpr int kIters = 10;
  std::vector<int> failures(ranks, 0);
  std::vector<double> elapsed(ranks, 0.0);
  runtime.run([&](rt::Comm& world) -> rt::Task<void> {
    const int me = world.rank();
    const int p = world.size();
    coll::AlltoallDesc desc;
    desc.block = block;
    desc.algo = coll::Algo::kMultileaderNodeAware;
    plan::PlanOptions popts;
    popts.group_size = 2;
    plan::CollectivePlan plan = plan::make_plan(
        world, machine, model::test_params(), desc, popts);

    rt::Buffer send = rt::Buffer::real(block * p);
    rt::Buffer recv = rt::Buffer::real(block * p);
    for (int d = 0; d < p; ++d) {
      std::memset(send.data() + d * block, (me * 31 + d) & 0xFF, block);
    }

    co_await rt::barrier(world);
    const auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < kIters; ++it) {
      co_await plan.execute(send.view(), recv.view());
    }
    co_await rt::barrier(world);
    elapsed[me] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    for (int s = 0; s < p; ++s) {
      const auto want = static_cast<std::byte>((s * 31 + me) & 0xFF);
      for (std::size_t k = 0; k < block; ++k) {
        if (recv.data()[s * block + k] != want) {
          ++failures[me];
          break;
        }
      }
    }

    // The same front door plans the rest of the family: an allgather plan
    // from a descriptor (the tuner would pick the algorithm if we left
    // desc.algo empty), executed just like the alltoall one.
    {
      coll::AllgatherDesc agd;
      agd.block = sizeof(int);
      agd.algo = coll::AllgatherAlgo::kLocalityAware;
      plan::PlanOptions agopts;
      agopts.group_size = 2;
      plan::CollectivePlan ag = plan::make_plan(
          world, machine, model::test_params(), agd, agopts);
      rt::Buffer mine = rt::Buffer::real(sizeof(int));
      rt::Buffer all = rt::Buffer::real(sizeof(int) * p);
      mine.typed<int>()[0] = me;
      co_await ag.execute(rt::ConstView(mine.view()), all.view());
      for (int r = 0; r < p; ++r) {
        if (all.typed<int>()[r] != r) {
          ++failures[me];
        }
      }
    }

    // An allreduce plan reduces in place (the MPI_IN_PLACE form).
    {
      coll::AllreduceDesc ard;
      ard.count = 1;
      ard.combiner = coll::sum_combiner<int>();
      plan::CollectivePlan ar =
          plan::make_plan(world, machine, model::test_params(), ard);
      rt::Buffer acc = rt::Buffer::real(sizeof(int));
      acc.typed<int>()[0] = me;
      co_await ar.execute_inplace(acc.view());
      if (acc.typed<int>()[0] != p * (p - 1) / 2) {
        ++failures[me];
      }
    }
  });
  double worst = 0.0;
  int bad = 0;
  for (int r = 0; r < ranks; ++r) {
    worst = std::max(worst, elapsed[r]);
    bad += failures[r];
  }
  std::printf("  %-24s %8.3f ms   %s   (%d executes of one plan)\n",
              "Persistent plan", worst * 1e3, bad == 0 ? "OK" : "CORRUPT",
              kIters);

  // --- observability: the same run, in numbers ------------------------------
  // Every subsystem feeds the process-global metrics registry; a few
  // headline counters show what the collectives above actually did.
  // A2A_METRICS=path dumps the full registry at exit, A2A_TRACE=dir writes
  // a per-rank Perfetto/Chrome trace (docs/observability.md).
  obs::MetricsRegistry& m = obs::metrics();
  std::printf("\nmetrics (A2A_METRICS=path for the full registry):\n");
  std::printf("  plan executions        %llu\n",
              static_cast<unsigned long long>(
                  m.counter_value("plan.executions")));
  std::printf("  tag streams acquired   %llu (high water stream %lld)\n",
              static_cast<unsigned long long>(m.counter_value("tags.acquired")),
              static_cast<long long>(m.gauge_value("tags.stream_high_water")));
  std::printf("  scratch allocations    %llu\n",
              static_cast<unsigned long long>(
                  m.counter_value("scratch.allocations")));
  return 0;
}
